package omp

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"goomp/internal/collector"
)

// Every iteration of a steal-scheduled loop runs exactly once, under
// team sizes and chunk sizes that force owner pops and concurrent
// steal-half transfers to race. Skewed busy work on the low iterations
// keeps the owner of the heavy deque occupied so thieves actually hit
// its word. Run with -race this doubles as the memory-model check on
// the packed-word protocol.
func TestStealExactlyOnce(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		for _, chunk := range []int{1, 3, 16} {
			for _, n := range []int{0, 1, 5, 97, 4096} {
				t.Run(fmt.Sprintf("p%d_c%d_n%d", p, chunk, n), func(t *testing.T) {
					r := newRT(t, Config{NumThreads: p})
					counts := make([]int32, n+1)
					r.Parallel(func(tc *ThreadCtx) {
						tc.ForSched(n, ScheduleSteal, chunk, func(lo, hi int) {
							if lo < 0 || hi > n || lo >= hi {
								t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
							}
							for i := lo; i < hi; i++ {
								atomic.AddInt32(&counts[i], 1)
								if i < 8 {
									// Heavy head: hold the owner in the body so
									// other threads run dry and steal.
									for s := 0; s < 50; s++ {
										runtime.Gosched()
									}
								}
							}
						})
					})
					for i := 0; i < n; i++ {
						if counts[i] != 1 {
							t.Fatalf("iteration %d ran %d times", i, counts[i])
						}
					}
				})
			}
		}
	}
}

// boundaries runs one loop and returns the sorted multiset of chunk
// boundaries the team observed.
func boundaries(r *RT, n int, sched Schedule, chunk int) []string {
	var mu sync.Mutex
	var got []string
	r.Parallel(func(tc *ThreadCtx) {
		tc.ForSched(n, sched, chunk, func(lo, hi int) {
			mu.Lock()
			got = append(got, fmt.Sprintf("%d:%d", lo, hi))
			mu.Unlock()
		})
	})
	sort.Strings(got)
	return got
}

// The steal schedule's chunk boundaries are the dynamic schedule's:
// [k*chunk, min((k+1)*chunk, n)) for every k — only the assignment of
// chunks to threads differs.
func TestStealBoundariesMatchDynamic(t *testing.T) {
	for _, p := range []int{1, 3, 8} {
		for _, chunk := range []int{1, 4, 7} {
			for _, n := range []int{1, 10, 63, 100} {
				rs := newRT(t, Config{NumThreads: p})
				rd := newRT(t, Config{NumThreads: p})
				got := boundaries(rs, n, ScheduleSteal, chunk)
				want := boundaries(rd, n, ScheduleDynamic, chunk)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("p=%d chunk=%d n=%d: steal %v != dynamic %v", p, chunk, n, got, want)
				}
			}
		}
	}
}

// With StealThreshold set, a dynamic loop at or above the threshold
// runs under the steal scheduler with boundaries identical to the
// plain dynamic schedule, and loops below the threshold stay dynamic.
func TestStealThresholdFastPathBoundaries(t *testing.T) {
	for _, n := range []int{10, 64, 512} {
		fast := newRT(t, Config{NumThreads: 4, StealThreshold: 64})
		slow := newRT(t, Config{NumThreads: 4})
		got := boundaries(fast, n, ScheduleDynamic, 3)
		want := boundaries(slow, n, ScheduleDynamic, 3)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("n=%d: threshold boundaries %v != dynamic %v", n, got, want)
		}
	}
}

// The dynamic fast path generates chunk-steal events at or above the
// threshold (proof the steal scheduler really ran) and none below it.
func TestStealThresholdEventRouting(t *testing.T) {
	r := newRT(t, Config{NumThreads: 4, StealThreshold: 100})
	q := r.Collector().NewQueue()
	collector.Control(q, collector.ReqStart)
	var steals atomic.Int64
	h := r.Collector().NewCallbackHandle(func(e collector.Event, ti *collector.ThreadInfo) {
		steals.Add(1)
	})
	collector.Register(q, collector.EventChunkSteal, h)

	run := func(n int) int64 {
		before := steals.Load()
		r.Parallel(func(tc *ThreadCtx) {
			tc.ForSched(n, ScheduleDynamic, 1, func(lo, hi int) {
				for s := 0; s < 20; s++ {
					runtime.Gosched()
				}
			})
		})
		return steals.Load() - before
	}
	if got := run(50); got != 0 {
		t.Errorf("below threshold: %d steal events, want 0", got)
	}
	run(4096) // above: steals may or may not occur, but must route legally
	// The strong claim below the threshold is the one that must hold;
	// above it we only require that any events carry a valid victim
	// (checked in TestStealVictimThiefPairing).
}

// Steal events carry the victim's team-local thread number in the
// descriptor's steal-victim slot, the thief is the dispatching thread,
// and a thread never appears as its own victim.
func TestStealVictimThiefPairing(t *testing.T) {
	r := newRT(t, Config{NumThreads: 8})
	q := r.Collector().NewQueue()
	collector.Control(q, collector.ReqStart)
	var mu sync.Mutex
	type edge struct{ thief, victim int32 }
	var edges []edge
	h := r.Collector().NewCallbackHandle(func(e collector.Event, ti *collector.ThreadInfo) {
		mu.Lock()
		edges = append(edges, edge{ti.ID, ti.StealVictim()})
		mu.Unlock()
	})
	collector.Register(q, collector.EventChunkSteal, h)
	collector.Register(q, collector.EventTaskSteal, h)

	r.Parallel(func(tc *ThreadCtx) {
		tc.ForSched(2048, ScheduleSteal, 1, func(lo, hi int) {
			if lo < 8 {
				for s := 0; s < 100; s++ {
					runtime.Gosched()
				}
			}
		})
		tc.Taskwait()
	})
	if len(edges) == 0 {
		t.Fatal("no steal events captured on a skewed steal-scheduled loop")
	}
	for _, e := range edges {
		if e.victim < 0 || e.victim >= 8 {
			t.Fatalf("steal event with victim %d out of team range", e.victim)
		}
		if e.victim == e.thief {
			t.Fatalf("thread %d recorded itself as steal victim", e.thief)
		}
	}
}

// Task deques: tasks submitted by every thread all run exactly once
// even when idle threads steal them, and task-steal events fire.
func TestTaskStealStress(t *testing.T) {
	r := newRT(t, Config{NumThreads: 8})
	q := r.Collector().NewQueue()
	collector.Control(q, collector.ReqStart)
	var taskSteals atomic.Int64
	h := r.Collector().NewCallbackHandle(func(e collector.Event, ti *collector.ThreadInfo) {
		taskSteals.Add(1)
	})
	collector.Register(q, collector.EventTaskSteal, h)

	const perThread = 200
	var ran atomic.Int64
	r.Parallel(func(tc *ThreadCtx) {
		// One producer floods its own deque; the other threads have
		// nothing and must steal to make the barrier's drain finish.
		if tc.ThreadNum() == 0 {
			for i := 0; i < 8*perThread; i++ {
				tc.Task(func(*ThreadCtx) {
					ran.Add(1)
					for s := 0; s < 10; s++ {
						runtime.Gosched()
					}
				})
			}
		}
		tc.Taskwait()
	})
	if ran.Load() != 8*perThread {
		t.Fatalf("ran %d tasks, want %d", ran.Load(), 8*perThread)
	}
	if taskSteals.Load() == 0 {
		t.Error("no task-steal events for a single-producer flood on an 8-thread team")
	}
}

// Taskloop splits [0,n) into grainsize-bounded tasks that cover every
// index exactly once.
func TestTaskloopExactlyOnce(t *testing.T) {
	for _, p := range []int{1, 4} {
		for _, grain := range []int{0, 1, 7, 1000} {
			for _, n := range []int{0, 1, 63, 1024} {
				r := newRT(t, Config{NumThreads: p})
				counts := make([]int32, n+1)
				r.Parallel(func(tc *ThreadCtx) {
					tc.Single(func() {
						tc.Taskloop(n, grain, func(lo, hi int) {
							if lo < 0 || hi > n || lo >= hi {
								t.Errorf("bad taskloop range [%d,%d)", lo, hi)
							}
							for i := lo; i < hi; i++ {
								atomic.AddInt32(&counts[i], 1)
							}
						})
					})
				})
				for i := 0; i < n; i++ {
					if counts[i] != 1 {
						t.Fatalf("p=%d grain=%d n=%d: index %d ran %d times",
							p, grain, n, i, counts[i])
					}
				}
			}
		}
	}
}

// Taskloop honours the grainsize bound: no generated range exceeds it.
func TestTaskloopGrainBound(t *testing.T) {
	r := newRT(t, Config{NumThreads: 4})
	const n, grain = 1000, 16
	var maxRange atomic.Int64
	r.Parallel(func(tc *ThreadCtx) {
		tc.Single(func() {
			tc.Taskloop(n, grain, func(lo, hi int) {
				w := int64(hi - lo)
				for {
					cur := maxRange.Load()
					if w <= cur || maxRange.CompareAndSwap(cur, w) {
						break
					}
				}
			})
		})
	})
	if maxRange.Load() > grain {
		t.Fatalf("taskloop produced a range of %d > grainsize %d", maxRange.Load(), grain)
	}
}

// Steady-state task submission reuses pooled nodes, groups and deque
// rings: amortized allocations per submitted task stay near zero. The
// bound is lenient (sync.Pool drains under GC pressure) but pins the
// property that submission is not 1-alloc-per-task.
func TestTaskSubmissionSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	r := newRT(t, Config{NumThreads: 2})
	var ran atomic.Int64
	fn := func(*ThreadCtx) { ran.Add(1) }
	// Warm the pools.
	r.Parallel(func(tc *ThreadCtx) {
		tc.Single(func() {
			for i := 0; i < 64; i++ {
				tc.Task(fn)
			}
			tc.Taskwait()
		})
	})
	const tasks = 1000
	avg := testing.AllocsPerRun(5, func() {
		r.Parallel(func(tc *ThreadCtx) {
			tc.Single(func() {
				for i := 0; i < tasks; i++ {
					tc.Task(fn)
				}
				tc.Taskwait()
			})
		})
	})
	if perTask := avg / tasks; perTask > 0.5 {
		t.Errorf("steady-state task submission allocates %.2f objects/task, want < 0.5", perTask)
	}
}

func BenchmarkTaskSubmitSteadyState(b *testing.B) {
	r := New(Config{NumThreads: 2})
	defer r.Close()
	fn := func(*ThreadCtx) {}
	b.ReportAllocs()
	b.ResetTimer()
	r.Parallel(func(tc *ThreadCtx) {
		tc.Single(func() {
			for i := 0; i < b.N; i++ {
				tc.Task(fn)
				if i%256 == 0 {
					tc.Taskwait()
				}
			}
			tc.Taskwait()
		})
	})
}

func BenchmarkScheduleZipf(b *testing.B) {
	work := make([]int, 2048)
	for i := range work {
		w := 2048 / (i + 1)
		if w < 1 {
			w = 1
		}
		work[i] = w
	}
	for _, sched := range []Schedule{ScheduleDynamic, ScheduleSteal} {
		b.Run(sched.String(), func(b *testing.B) {
			r := New(Config{NumThreads: 8})
			defer r.Close()
			sink := int64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Parallel(func(tc *ThreadCtx) {
					mine := int64(0)
					tc.ForSched(len(work), sched, 1, func(lo, hi int) {
						for j := lo; j < hi; j++ {
							for u := 0; u < work[j]; u++ {
								mine += int64(u & 7)
							}
						}
					})
					atomic.AddInt64(&sink, mine)
				})
			}
			_ = sink
		})
	}
}
