package omp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"goomp/internal/collector"
	"goomp/internal/super"
)

// RegionPanic wraps a panic raised inside a parallel region body (or a
// task body) on any thread of the team. The runtime keeps the
// fork-join structure intact around a panicking body: the team's
// barrier is cancelled so no thread deadlocks waiting for the
// panicked one, every thread finishes the region, and the first panic
// is re-raised on the master after the join event.
type RegionPanic struct {
	Thread int
	Value  any
}

func (p *RegionPanic) Error() string {
	return fmt.Sprintf("omp: panic in parallel region on thread %d: %v", p.Thread, p.Value)
}

// Team is the thread-team descriptor for one parallel region instance:
// the barrier the team synchronizes on, the shared worksharing state,
// and the region/parent IDs the collector exposes.
type Team struct {
	rt   *RT
	size int
	info *collector.TeamInfo

	barrier barrier

	// Worksharing constructs are identified by their per-thread
	// sequence number: every thread in a team executes the same
	// sequence of worksharing constructs, so equal sequence numbers
	// address the same construct instance. Loop descriptors live in a
	// fixed ring of preallocated padded slots indexed by sequence
	// number (see getLoop); single descriptors are created by the
	// first thread to arrive and removed by the last to leave.
	wsMu    sync.Mutex
	singles map[uint64]*singleDesc
	ring    [loopRingSize]loopDesc

	// reduction is the compiler-generated lock serializing updates of
	// shared reduction variables under the generic Reduce path
	// (generated the same way as critical region locks). The typed
	// ReduceInt64/ReduceFloat64 fast path bypasses it: threads deposit
	// into their padded red slot and the deposits are combined by the
	// releasing thread of the next team barrier.
	reduction  Lock
	red        []redSlot
	redPending atomic.Bool

	// tasks is the team's explicit-task system (OpenMP 3.0 extension):
	// per-thread work-stealing deques, recycled across regions.
	tasks taskScheduler

	panicMu sync.Mutex
	panics  []*RegionPanic
}

// flushReductions applies every pending typed-reduction deposit to its
// shared target and clears the slots. It runs as the barrier's combine
// hook: exactly one thread executes it per barrier episode, after all
// threads have arrived (so no slot has a concurrent writer) and before
// any is released (so every thread leaves the barrier seeing the
// combined values).
func (t *Team) flushReductions() {
	if !t.redPending.Load() {
		return
	}
	t.redPending.Store(false)
	for i := range t.red {
		s := &t.red[i]
		if s.i64 != nil {
			*s.i64 += s.iv
			s.i64, s.iv = nil, 0
		}
		if s.f64 != nil {
			*s.f64 += s.fv
			s.f64, s.fv = nil, 0
		}
		for j := range s.more {
			e := &s.more[j]
			if e.i64 != nil {
				*e.i64 += e.iv
			} else {
				*e.f64 += e.fv
			}
		}
		s.more = s.more[:0]
	}
}

// recordPanic stores a recovered panic and cancels the team barrier so
// the remaining threads cannot deadlock waiting for the unwound one.
// Synchronization within the torn-down region is best-effort from this
// point; the region's results are discarded when the master re-raises.
func (t *Team) recordPanic(thread int, value any) {
	t.panicMu.Lock()
	t.panics = append(t.panics, &RegionPanic{Thread: thread, Value: value})
	t.panicMu.Unlock()
	t.barrier.cancel()
}

// firstPanic returns the first recorded panic, or nil.
func (t *Team) firstPanic() *RegionPanic {
	t.panicMu.Lock()
	defer t.panicMu.Unlock()
	if len(t.panics) == 0 {
		return nil
	}
	return t.panics[0]
}

// runRegionBody executes a region body, converting a panic into a team
// panic record so the thread still joins the closing barrier.
func runRegionBody(tc *ThreadCtx, fn func(*ThreadCtx)) {
	defer func() {
		if r := recover(); r != nil {
			tc.team.recordPanic(tc.id, r)
		}
	}()
	fn(tc)
}

func newTeam(r *RT, size int, info *collector.TeamInfo) *Team {
	t := &Team{
		rt:      r,
		size:    size,
		info:    info,
		singles: make(map[uint64]*singleDesc),
		red:     make([]redSlot, size),
	}
	for i := range t.ring {
		// Ring slots start as if their previous tenant (sequence
		// number i - loopRingSize) had fully retired.
		start := int64(i) - loopRingSize
		t.ring[i].claim.Store(start)
		t.ring[i].ready.Store(start)
		t.ring[i].free.Store(start)
	}
	t.barrier = newTeamBarrier(size, r.cfg, t.flushReductions)
	t.tasks.deq = r.getTaskDeques(size)
	return t
}

// Barrier is the explicit barrier construct (#pragma omp barrier). The
// compiler translation generates a distinct runtime call for explicit
// barriers so the runtime can distinguish them from implicit ones
// (§IV-C.2); this is that entry point.
func (tc *ThreadCtx) Barrier() {
	tc.barrierImpl(collector.StateExplicitBarrier,
		collector.EventThrBeginEBar, collector.EventThrEndEBar)
}

// implicitBarrier is __ompc_ibarrier: the barrier ending parallel
// regions and (by default) worksharing constructs.
func (tc *ThreadCtx) implicitBarrier() {
	tc.barrierImpl(collector.StateImplicitBarrier,
		collector.EventThrBeginIBar, collector.EventThrEndIBar)
}

func (tc *ThreadCtx) barrierImpl(state collector.State, begin, end collector.Event) {
	// All explicit tasks of the region complete at a barrier: the last
	// thread to arrive drains whatever remains.
	tc.drainTasks()
	if tc.team.size == 1 {
		// A team of one still counts the barrier (the barrier ID
		// increments each time a thread enters a barrier) but has
		// nobody to wait for.
		tc.td.EnterWait(state)
		tc.rt.col.Event(tc.td, begin)
		tc.rt.col.Event(tc.td, end)
		tc.td.SetState(collector.StateWorking)
		return
	}
	tc.td.EnterWait(state)
	tc.rt.col.Event(tc.td, begin)
	// All three barrier topologies (central spin, combining tree,
	// condition-variable) funnel through await, so this is the single
	// supervision point for barrier waits.
	s := super.Enabled()
	var tok uint64
	if s != nil {
		tok = s.BeginWait(tc.superWho(), tc.td.ID,
			super.Resource{Kind: super.ResBarrier, ID: tc.team.info.RegionID,
				Detail: fmt.Sprintf("region %d, team of %d", tc.team.info.RegionID, tc.team.size)},
			state.String())
	}
	tc.team.barrier.await(tc.id)
	if s != nil {
		s.EndWait(tok)
	}
	tc.rt.col.Event(tc.td, end)
	tc.td.SetState(collector.StateWorking)
}

// barrier is a reusable team barrier; await takes the caller's thread
// number so topological implementations can address per-thread slots.
// cancel releases all current and future waiters (used when a region
// body panics). Implementations run the team's combine hook on the
// releasing thread, after the last arrival and before any release.
type barrier interface {
	await(tid int)
	cancel()
}

// blockingBarrier is a central sense-reversing barrier that blocks
// waiters on a condition variable, selected with BarrierSpin < 0
// (never spin): a blocked waiter frees its core immediately, at the
// cost of a park/unpark round trip per episode. The arrival count
// sits on its own cache line so waiters re-checking the sense after
// wakeup do not collide with arrivals of the next episode.
type blockingBarrier struct {
	mu        sync.Mutex
	cond      *sync.Cond
	size      int
	combine   func()
	_         [cacheLinePad]byte
	count     int
	_         [cacheLinePad - 8]byte
	sense     bool
	cancelled bool
}

func newBlockingBarrier(size int, combine func()) *blockingBarrier {
	b := &blockingBarrier{size: size, combine: combine}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *blockingBarrier) await(int) {
	b.mu.Lock()
	if b.cancelled {
		b.mu.Unlock()
		return
	}
	sense := b.sense
	b.count++
	if b.count == b.size {
		if b.combine != nil {
			b.combine()
		}
		b.count = 0
		b.sense = !sense
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for b.sense == sense && !b.cancelled {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

func (b *blockingBarrier) cancel() {
	b.mu.Lock()
	b.cancelled = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
