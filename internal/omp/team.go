package omp

import (
	"fmt"
	"sync"

	"goomp/internal/collector"
)

// RegionPanic wraps a panic raised inside a parallel region body (or a
// task body) on any thread of the team. The runtime keeps the
// fork-join structure intact around a panicking body: the team's
// barrier is cancelled so no thread deadlocks waiting for the
// panicked one, every thread finishes the region, and the first panic
// is re-raised on the master after the join event.
type RegionPanic struct {
	Thread int
	Value  any
}

func (p *RegionPanic) Error() string {
	return fmt.Sprintf("omp: panic in parallel region on thread %d: %v", p.Thread, p.Value)
}

// Team is the thread-team descriptor for one parallel region instance:
// the barrier the team synchronizes on, the shared worksharing state,
// and the region/parent IDs the collector exposes.
type Team struct {
	rt   *RT
	size int
	info *collector.TeamInfo

	barrier barrier

	// Worksharing constructs are identified by their per-thread
	// sequence number: every thread in a team executes the same
	// sequence of worksharing constructs, so equal sequence numbers
	// address the same construct instance. Descriptors are created by
	// the first thread to arrive and removed by the last to leave.
	wsMu    sync.Mutex
	loops   map[uint64]*loopDesc
	singles map[uint64]*singleDesc

	// reduction is the compiler-generated lock serializing updates of
	// shared reduction variables (generated the same way as critical
	// region locks).
	reduction Lock

	// tasks is the team's explicit-task pool (OpenMP 3.0 extension).
	tasks taskPool

	panicMu sync.Mutex
	panics  []*RegionPanic
}

// recordPanic stores a recovered panic and cancels the team barrier so
// the remaining threads cannot deadlock waiting for the unwound one.
// Synchronization within the torn-down region is best-effort from this
// point; the region's results are discarded when the master re-raises.
func (t *Team) recordPanic(thread int, value any) {
	t.panicMu.Lock()
	t.panics = append(t.panics, &RegionPanic{Thread: thread, Value: value})
	t.panicMu.Unlock()
	t.barrier.cancel()
}

// firstPanic returns the first recorded panic, or nil.
func (t *Team) firstPanic() *RegionPanic {
	t.panicMu.Lock()
	defer t.panicMu.Unlock()
	if len(t.panics) == 0 {
		return nil
	}
	return t.panics[0]
}

// runRegionBody executes a region body, converting a panic into a team
// panic record so the thread still joins the closing barrier.
func runRegionBody(tc *ThreadCtx, fn func(*ThreadCtx)) {
	defer func() {
		if r := recover(); r != nil {
			tc.team.recordPanic(tc.id, r)
		}
	}()
	fn(tc)
}

func newTeam(r *RT, size int, info *collector.TeamInfo) *Team {
	t := &Team{
		rt:      r,
		size:    size,
		info:    info,
		loops:   make(map[uint64]*loopDesc),
		singles: make(map[uint64]*singleDesc),
	}
	if r.cfg.SpinBarrier {
		t.barrier = newSpinBarrier(size)
	} else {
		t.barrier = newBlockingBarrier(size)
	}
	t.tasks.init()
	return t
}

// Barrier is the explicit barrier construct (#pragma omp barrier). The
// compiler translation generates a distinct runtime call for explicit
// barriers so the runtime can distinguish them from implicit ones
// (§IV-C.2); this is that entry point.
func (tc *ThreadCtx) Barrier() {
	tc.barrierImpl(collector.StateExplicitBarrier,
		collector.EventThrBeginEBar, collector.EventThrEndEBar)
}

// implicitBarrier is __ompc_ibarrier: the barrier ending parallel
// regions and (by default) worksharing constructs.
func (tc *ThreadCtx) implicitBarrier() {
	tc.barrierImpl(collector.StateImplicitBarrier,
		collector.EventThrBeginIBar, collector.EventThrEndIBar)
}

func (tc *ThreadCtx) barrierImpl(state collector.State, begin, end collector.Event) {
	// All explicit tasks of the region complete at a barrier: the last
	// thread to arrive drains whatever remains.
	tc.drainTasks()
	if tc.team.size == 1 {
		// A team of one still counts the barrier (the barrier ID
		// increments each time a thread enters a barrier) but has
		// nobody to wait for.
		tc.td.EnterWait(state)
		tc.rt.col.Event(tc.td, begin)
		tc.rt.col.Event(tc.td, end)
		tc.td.SetState(collector.StateWorking)
		return
	}
	tc.td.EnterWait(state)
	tc.rt.col.Event(tc.td, begin)
	tc.team.barrier.await()
	tc.rt.col.Event(tc.td, end)
	tc.td.SetState(collector.StateWorking)
}

// barrier is a reusable team barrier. cancel releases all current and
// future waiters (used when a region body panics).
type barrier interface {
	await()
	cancel()
}

// blockingBarrier is a central sense-reversing barrier that blocks
// waiters on a condition variable. It is the default: threads may be
// oversubscribed on the host, and a blocked waiter frees its core.
type blockingBarrier struct {
	mu        sync.Mutex
	cond      *sync.Cond
	size      int
	count     int
	sense     bool
	cancelled bool
}

func newBlockingBarrier(size int) *blockingBarrier {
	b := &blockingBarrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *blockingBarrier) await() {
	b.mu.Lock()
	if b.cancelled {
		b.mu.Unlock()
		return
	}
	sense := b.sense
	b.count++
	if b.count == b.size {
		b.count = 0
		b.sense = !sense
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for b.sense == sense && !b.cancelled {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

func (b *blockingBarrier) cancel() {
	b.mu.Lock()
	b.cancelled = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
