package omp

import (
	"time"

	"goomp/internal/perf"
)

// The OpenMP user-level library routines (omp_* functions): the part
// of the API application code calls directly, as opposed to the
// compiler-generated runtime calls. Routines that depend on the
// calling thread are methods on ThreadCtx (Go has no thread-local
// storage to infer the caller); process-wide routines are methods on
// RT.

// GetWtime returns elapsed wall-clock time in seconds from a
// process-local epoch (omp_get_wtime).
func GetWtime() float64 {
	return float64(perf.Cycles()) / float64(time.Second)
}

// GetWtick returns the timer resolution in seconds (omp_get_wtick):
// the monotonic clock is nanosecond-granular.
func GetWtick() float64 { return 1e-9 }

// MaxThreads returns the value a parallel region without an explicit
// team size would use (omp_get_max_threads).
func (r *RT) MaxThreads() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg.NumThreads
}

// SetNumThreads changes the default team size for subsequent parallel
// regions (omp_set_num_threads). It must be called from serial
// context.
func (r *RT) SetNumThreads(n int) {
	if n < 1 {
		return
	}
	r.mu.Lock()
	r.cfg.NumThreads = n
	r.mu.Unlock()
}

// GetSchedule returns the runtime-schedule ICVs (omp_get_schedule).
func (r *RT) GetSchedule() (Schedule, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg.Schedule, r.cfg.Chunk
}

// SetSchedule changes the runtime-schedule ICVs consulted by
// ScheduleRuntime loops (omp_set_schedule).
func (r *RT) SetSchedule(s Schedule, chunk int) {
	if chunk < 1 {
		chunk = 1
	}
	r.mu.Lock()
	r.cfg.Schedule = s
	r.cfg.Chunk = chunk
	r.mu.Unlock()
}

// InParallel reports whether the context is inside an active parallel
// region with more than one thread (omp_in_parallel).
func (tc *ThreadCtx) InParallel() bool { return tc.team.size > 1 }

// Level returns the nesting depth of active parallel regions enclosing
// the context, counting the outermost as 1 (omp_get_level counts all
// regions; serialized nested regions count too, as OpenMP specifies).
func (tc *ThreadCtx) Level() int { return tc.level }

// AncestorThreadNum returns the thread number of this context's
// ancestor at the given level (omp_get_ancestor_thread_num): level
// equal to Level() is the thread itself; 0 is the initial thread.
// It returns -1 for a level that does not exist.
func (tc *ThreadCtx) AncestorThreadNum(level int) int {
	cur := tc
	for cur != nil {
		if cur.level == level {
			return cur.id
		}
		cur = cur.parent
	}
	if level == 0 {
		return 0
	}
	return -1
}

// TeamSize returns the team size at an enclosing level
// (omp_get_team_size), or -1 if the level does not exist.
func (tc *ThreadCtx) TeamSize(level int) int {
	cur := tc
	for cur != nil {
		if cur.level == level {
			return cur.team.size
		}
		cur = cur.parent
	}
	if level == 0 {
		return 1
	}
	return -1
}
