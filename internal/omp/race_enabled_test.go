//go:build race

package omp

// raceEnabled reports whether the race detector is compiled in; alloc
// assertions are skipped under it because sync.Pool deliberately
// drops items at random in race mode.
const raceEnabled = true
