package omp

import (
	"sync/atomic"

	"goomp/internal/collector"
)

// Work-stealing loop scheduling (schedule(steal), ROADMAP item 3).
//
// Dynamic and guided schedules claim chunks from one shared counter;
// under fine-grained irregular work every claim contends on that single
// cache line and the first claimer of a batched dynamic loop can walk
// away with a monster batch of what turns out to be the heaviest work.
// schedule(steal) instead pre-partitions the chunk index space evenly
// across the team into per-thread chunk deques. Each deque is a single
// packed 64-bit word — the half-open chunk range [lo, hi) in chunk
// units, lo in the low 32 bits — padded to its own cache line. The
// owner pops one chunk at a time from the bottom (low end, preserving
// ascending iteration order and therefore locality of adjacent chunks),
// and a thread that runs dry steals the top half of a victim's
// remaining range in one CAS, moving contention entirely off the
// common case: a thread touching only its own deque runs lock- and
// contention-free.
//
// Correctness of the single-word protocol: every transition is a CAS
// (or an owner store to a provably empty word), and the word fully
// encodes the deque's state. A CAS that succeeds transfers exactly the
// chunks present in the compared-against value, so stale reads are
// harmless — the classic ABA hazard does not apply because no decision
// depends on history, only on the value the CAS actually observed.
// Chunk boundaries are identical to schedule(dynamic) with the same
// chunk size — every body invocation is [k*chunk, min((k+1)*chunk, n))
// — only the chunk-to-thread assignment differs, which OpenMP leaves
// unspecified. That makes the opt-in dynamic fast path
// (Config.StealThreshold / GOMP_STEAL_THRESHOLD) legal: above the
// threshold a dynamic loop silently runs under steal with bit-identical
// boundaries.

// chunkDeque is one thread's range of unclaimed schedule chunks,
// packed lo|hi<<32 in chunk units. Padded so owner pops on one deque
// never false-share with steals on a neighbour.
type chunkDeque struct {
	w atomic.Uint64
	_ [cacheLinePad - 8]byte
}

func packChunks(lo, hi uint32) uint64 { return uint64(hi)<<32 | uint64(lo) }

func unpackChunks(w uint64) (lo, hi uint32) { return uint32(w), uint32(w >> 32) }

// maxStealChunks is the largest chunk count representable in one packed
// deque word. Larger loops degrade to the dynamic schedule (identical
// boundaries, shared-counter claiming).
const maxStealChunks = 1 << 31

// forSteal runs one worksharing loop under the steal schedule. The
// claiming thread of the loop descriptor has pre-partitioned the chunk
// index space [0, nchunks) evenly over the team (same split as
// StaticBounds); this thread drains its own deque bottom-up and turns
// thief when dry.
func (tc *ThreadCtx) forSteal(n, chunk int, body func(lo, hi int)) {
	ld := tc.getLoopKind(n, chunk, true)
	me := &ld.deq[tc.id].w
	for {
		w := me.Load()
		l, h := unpackChunks(w)
		if l < h {
			if me.CompareAndSwap(w, packChunks(l+1, h)) {
				lo := int(l) * chunk
				body(lo, min(lo+chunk, n))
				noteChunk()
			}
			continue
		}
		if !tc.stealChunks(ld) {
			break
		}
	}
	tc.doneLoop(ld)
}

// stealChunks sweeps the other deques once, stealing the top half of
// the first non-empty range it can take and storing the spoils into
// this thread's own (empty) deque. Returns false when a full sweep
// found nothing to steal: remaining chunks, if any, are in flight in
// deques whose owners have not retired and will drain them.
func (tc *ThreadCtx) stealChunks(ld *loopDesc) bool {
	p := tc.team.size
	for off := 1; off < p; off++ {
		v := tc.id + off
		if v >= p {
			v -= p
		}
		d := &ld.deq[v].w
		for {
			w := d.Load()
			l, h := unpackChunks(w)
			if l >= h {
				break
			}
			// Ceiling half: a lone final chunk is stolen whole rather
			// than stranded behind a busy victim.
			take := (h - l + 1) / 2
			mid := h - take
			if d.CompareAndSwap(w, packChunks(l, mid)) {
				// Own deque is empty and only its owner may store to an
				// empty word (thieves CAS only against non-empty
				// values), so a plain store publishes the spoils.
				ld.deq[tc.id].w.Store(packChunks(mid, h))
				tc.noteSteal(collector.EventChunkSteal, v)
				return true
			}
		}
	}
	return false
}

// noteSteal reports a completed steal: the victim's team-local thread
// number is published in the thief's descriptor for the duration of
// the dispatch (tools read it via ThreadInfo.StealVictim), then the
// extension event fires from the thief.
func (tc *ThreadCtx) noteSteal(e collector.Event, victim int) {
	tc.td.SetStealVictim(int32(victim))
	tc.rt.col.Event(tc.td, e)
}
