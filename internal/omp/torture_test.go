package omp

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"goomp/internal/collector"
)

// Torture test: random but team-uniform sequences of every construct,
// executed repeatedly, with exact accounting. This is the runtime
// analogue of a fuzzer — any miscounted single, lost loop iteration,
// unbalanced barrier or broken ordered chain fails loudly, and any
// synchronization bug tends to deadlock (caught by the test timeout).

type tortureOp struct {
	kind  int
	n     int // iterations / sections
	sched Schedule
	chunk int
}

const (
	opFor = iota
	opForSched
	opBarrier
	opSingle
	opCritical
	opReduce
	opSections
	opOrdered
	opTasks
	numTortureOps
)

func buildTortureProgram(rng *rand.Rand, length int) []tortureOp {
	ops := make([]tortureOp, length)
	scheds := []Schedule{ScheduleStatic, ScheduleDynamic, ScheduleGuided}
	for i := range ops {
		ops[i] = tortureOp{
			kind:  rng.Intn(numTortureOps),
			n:     rng.Intn(40) + 1,
			sched: scheds[rng.Intn(len(scheds))],
			chunk: rng.Intn(5) + 1,
		}
	}
	return ops
}

func TestConstructTorture(t *testing.T) {
	const trials = 12
	for trial := 0; trial < trials; trial++ {
		trial := trial
		rng := rand.New(rand.NewSource(int64(trial) * 7919))
		threads := rng.Intn(6) + 1
		length := rng.Intn(12) + 3
		ops := buildTortureProgram(rng, length)

		r := New(Config{NumThreads: threads, LoopEvents: trial%2 == 0})
		var loopIters atomic.Int64 // every executed loop iteration
		var singles atomic.Int64
		var criticals int64 // protected by the critical construct itself
		var reduced int64
		var sections atomic.Int64
		var tasks atomic.Int64
		orderedOK := true

		var wantLoop, wantSingle, wantCritical, wantReduce, wantSections, wantTasks int64
		for _, op := range ops {
			switch op.kind {
			case opFor, opForSched, opOrdered:
				wantLoop += int64(op.n)
			case opSingle:
				wantSingle++
			case opCritical:
				wantCritical += int64(threads)
			case opReduce:
				wantReduce += int64(threads)
			case opSections:
				wantSections += int64(op.n)
			case opTasks:
				wantTasks += int64(op.n)
			}
		}

		r.Parallel(func(tc *ThreadCtx) {
			for _, op := range ops {
				switch op.kind {
				case opFor:
					tc.For(op.n, func(int) { loopIters.Add(1) })
				case opForSched:
					tc.ForSched(op.n, op.sched, op.chunk, func(lo, hi int) {
						loopIters.Add(int64(hi - lo))
					})
				case opBarrier:
					tc.Barrier()
				case opSingle:
					tc.Single(func() { singles.Add(1) })
				case opCritical:
					tc.Critical("torture", func() { criticals++ })
				case opReduce:
					tc.ReduceInt64(&reduced, 1)
				case opSections:
					fns := make([]func(), op.n)
					for i := range fns {
						fns[i] = func() { sections.Add(1) }
					}
					tc.Sections(fns...)
				case opOrdered:
					prev := int64(-1)
					_ = prev
					tc.ForOrdered(op.n, func(i int, ord *Ordered) {
						ord.Do(func() {
							loopIters.Add(1)
						})
					})
				case opTasks:
					tc.SingleNoWait(func() {
						for i := 0; i < op.n; i++ {
							tc.Task(func(*ThreadCtx) { tasks.Add(1) })
						}
					})
					tc.Barrier() // all tasks drain here
				}
			}
		})
		r.Close()

		if loopIters.Load() != wantLoop {
			t.Errorf("trial %d: loop iterations %d, want %d", trial, loopIters.Load(), wantLoop)
		}
		if singles.Load() != wantSingle {
			t.Errorf("trial %d: singles %d, want %d", trial, singles.Load(), wantSingle)
		}
		if criticals != wantCritical {
			t.Errorf("trial %d: criticals %d, want %d", trial, criticals, wantCritical)
		}
		if reduced != wantReduce {
			t.Errorf("trial %d: reduced %d, want %d", trial, reduced, wantReduce)
		}
		if sections.Load() != wantSections {
			t.Errorf("trial %d: sections %d, want %d", trial, sections.Load(), wantSections)
		}
		if tasks.Load() != wantTasks {
			t.Errorf("trial %d: tasks %d, want %d", trial, tasks.Load(), wantTasks)
		}
		if !orderedOK {
			t.Errorf("trial %d: ordered sections out of order", trial)
		}
	}
}

// TestTortureUnderCollector repeats a torture program with a collector
// attached and every event registered: event generation must never
// change construct semantics.
func TestTortureUnderCollector(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ops := buildTortureProgram(rng, 10)
	run := func(withCollector bool) (int64, int64) {
		r := New(Config{NumThreads: 4, LoopEvents: true, AtomicEvents: true})
		defer r.Close()
		if withCollector {
			q := r.Collector().NewQueue()
			if ec := collector.Control(q, collector.ReqStart); ec != collector.ErrOK {
				t.Fatalf("start: %v", ec)
			}
			h := r.Collector().NewCallbackHandle(func(collector.Event, *collector.ThreadInfo) {})
			for e := collector.Event(0); int32(e) < collector.NumEvents; e++ {
				if ec := collector.Register(q, e, h); ec != collector.ErrOK {
					t.Fatalf("register %v: %v", e, ec)
				}
			}
		}
		var iters atomic.Int64
		var singles atomic.Int64
		r.Parallel(func(tc *ThreadCtx) {
			for _, op := range ops {
				switch op.kind {
				case opFor, opForSched, opOrdered:
					tc.For(op.n, func(int) { iters.Add(1) })
				case opSingle:
					tc.Single(func() { singles.Add(1) })
				default:
					tc.Barrier()
				}
			}
		})
		return iters.Load(), singles.Load()
	}
	offIters, offSingles := run(false)
	onIters, onSingles := run(true)
	if offIters != onIters || offSingles != onSingles {
		t.Errorf("collector changed semantics: (%d,%d) vs (%d,%d)",
			offIters, offSingles, onIters, onSingles)
	}
}
