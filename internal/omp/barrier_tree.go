package omp

import (
	"runtime"
	"sync/atomic"
)

// treeBarrier is a fixed-degree combining tree barrier (fan-in
// barrierFanIn) in the Mellor-Crummey & Scott family: arrivals combine
// up the tree through per-node padded counters, the root runs the
// team's combine hook (reduction flush), and the release wave
// propagates back down through per-waiter padded flags. No two waiters
// ever spin on the same cache line, so barrier cost grows with tree
// depth instead of with team-size contention on one central line.
//
// Thread i's parent is (i-1)/fanIn; its children are i*fanIn+1 ..
// i*fanIn+fanIn (clipped to the team). Waiters use the hybrid
// bounded-spin-then-park policy from waitcell, so the barrier honors
// OMP_WAIT_POLICY on dedicated cores and cannot live-lock when the
// team is oversubscribed.
type treeBarrier struct {
	size      int
	spin      int
	combine   func()
	cancelled atomic.Bool
	nodes     []treeNode
}

// treeNode is one thread's slot in the tree. pending and the arrival
// park state are written by the node's children; release is written by
// its parent; epoch is owner-only. Each group sits on its own padded
// region so child arrival traffic never invalidates the release flag.
type treeNode struct {
	pending atomic.Int32  // children yet to arrive this episode
	aparked atomic.Uint32 // nonzero while the owner parks awaiting children
	ach     chan struct{}
	_       [cacheLinePad - 16]byte

	release waitcell // parent -> owner release flag + park slot

	children int32  // static child count
	epoch    uint32 // episodes completed (owner-only)
	_        [cacheLinePad - 12]byte
}

func newTreeBarrier(size, spin int, combine func()) *treeBarrier {
	b := &treeBarrier{
		size:    size,
		spin:    spin,
		combine: combine,
		nodes:   make([]treeNode, size),
	}
	for i := range b.nodes {
		n := &b.nodes[i]
		first := i*barrierFanIn + 1
		for c := first; c < first+barrierFanIn && c < size; c++ {
			n.children++
		}
		n.pending.Store(n.children)
		n.ach = make(chan struct{}, 1)
		n.release.ch = make(chan struct{}, 1)
	}
	return b
}

func (b *treeBarrier) await(tid int) {
	if b.cancelled.Load() {
		return
	}
	n := &b.nodes[tid]
	n.epoch++
	gen := n.epoch

	// Arrival phase: wait for this node's subtree, then report one
	// combined arrival to the parent.
	if n.children > 0 {
		b.awaitChildren(n)
	}
	if tid == 0 {
		// Root: every other thread has arrived (arrivals only
		// propagate upward once a subtree is complete). Run the
		// combine hook while the team is quiescent, then start the
		// release wave.
		if !b.cancelled.Load() && b.combine != nil {
			b.combine()
		}
		n.pending.Store(n.children)
		b.releaseChildren(tid, gen)
		return
	}
	parent := &b.nodes[(tid-1)/barrierFanIn]
	if parent.pending.Add(-1) == 0 && parent.aparked.Swap(0) != 0 {
		select {
		case parent.ach <- struct{}{}:
		default:
		}
	}

	// Release phase: wait for the parent's wave, re-arm the arrival
	// counter for the next episode (safe: our children re-arrive only
	// after we release them), then extend the wave to our subtree.
	n.release.await(gen, b.spin, &b.cancelled)
	n.pending.Store(n.children)
	b.releaseChildren(tid, gen)
}

// awaitChildren waits until every child of n has arrived, with the
// same hybrid spin-then-park policy as waitcell but predicated on the
// arrival counter.
func (b *treeBarrier) awaitChildren(n *treeNode) {
	for i := 0; i < b.spin; i++ {
		if n.pending.Load() <= 0 || b.cancelled.Load() {
			return
		}
		if i&spinYieldMask == spinYieldMask {
			runtime.Gosched()
		}
	}
	for n.pending.Load() > 0 && !b.cancelled.Load() {
		n.aparked.Store(1)
		if n.pending.Load() <= 0 || b.cancelled.Load() {
			n.aparked.Store(0)
			return
		}
		<-n.ach
	}
}

func (b *treeBarrier) releaseChildren(tid int, gen uint32) {
	first := tid*barrierFanIn + 1
	for c := first; c < first+barrierFanIn && c < b.size; c++ {
		b.nodes[c].release.wake(gen)
	}
}

// cancel releases every current and future waiter (a region body
// panicked): both wait predicates check the cancelled flag, and every
// park slot is interrupted so parked waiters re-evaluate it.
func (b *treeBarrier) cancel() {
	b.cancelled.Store(true)
	for i := range b.nodes {
		n := &b.nodes[i]
		if n.aparked.Swap(0) != 0 {
			select {
			case n.ach <- struct{}{}:
			default:
			}
		}
		n.release.interrupt()
	}
}
