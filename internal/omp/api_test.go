package omp

import (
	"testing"
	"time"
)

func TestGetWtime(t *testing.T) {
	a := GetWtime()
	time.Sleep(2 * time.Millisecond)
	b := GetWtime()
	if b <= a {
		t.Errorf("wtime not advancing: %v -> %v", a, b)
	}
	if b-a < 0.001 || b-a > 1 {
		t.Errorf("elapsed %v seconds, want ~0.002", b-a)
	}
	if GetWtick() != 1e-9 {
		t.Errorf("wtick = %v", GetWtick())
	}
}

func TestSetNumThreads(t *testing.T) {
	r := newRT(t, Config{NumThreads: 2})
	if r.MaxThreads() != 2 {
		t.Errorf("MaxThreads = %d", r.MaxThreads())
	}
	r.SetNumThreads(5)
	if r.MaxThreads() != 5 {
		t.Errorf("MaxThreads after set = %d", r.MaxThreads())
	}
	var count int
	var mu Lock
	r.Parallel(func(tc *ThreadCtx) {
		mu.Acquire(tc)
		count++
		mu.Release()
	})
	if count != 5 {
		t.Errorf("region ran %d threads, want 5", count)
	}
	r.SetNumThreads(0) // invalid: ignored
	if r.MaxThreads() != 5 {
		t.Error("invalid SetNumThreads changed the ICV")
	}
}

func TestSetSchedule(t *testing.T) {
	r := newRT(t, Config{NumThreads: 3})
	r.SetSchedule(ScheduleGuided, 4)
	s, c := r.GetSchedule()
	if s != ScheduleGuided || c != 4 {
		t.Errorf("schedule = (%v, %d)", s, c)
	}
	counts := make([]int32, 100)
	r.Parallel(func(tc *ThreadCtx) {
		tc.ForSched(100, ScheduleRuntime, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				counts[i]++
			}
		})
	})
	for i, v := range counts {
		if v != 1 {
			t.Fatalf("iteration %d ran %d times", i, v)
		}
	}
	r.SetSchedule(ScheduleStatic, 0) // chunk clamps to 1
	if _, c := r.GetSchedule(); c != 1 {
		t.Errorf("chunk = %d, want clamp to 1", c)
	}
}

func TestInParallelAndLevel(t *testing.T) {
	r := newRT(t, Config{NumThreads: 2})
	r.Parallel(func(tc *ThreadCtx) {
		if !tc.InParallel() {
			t.Error("InParallel false inside a 2-thread region")
		}
		if tc.Level() != 1 {
			t.Errorf("level = %d, want 1", tc.Level())
		}
		tc.Parallel(1, func(in *ThreadCtx) {
			if in.InParallel() {
				t.Error("InParallel true in a serialized team of one")
			}
			if in.Level() != 2 {
				t.Errorf("nested level = %d, want 2", in.Level())
			}
		})
	})
}

func TestAncestryAcrossNesting(t *testing.T) {
	r := newRT(t, Config{NumThreads: 3, Nested: true})
	r.Parallel(func(tc *ThreadCtx) {
		if tc.ThreadNum() != 1 {
			return
		}
		tc.Parallel(2, func(in *ThreadCtx) {
			if got := in.AncestorThreadNum(1); got != 1 {
				t.Errorf("ancestor at level 1 = %d, want 1", got)
			}
			if got := in.AncestorThreadNum(2); got != in.ThreadNum() {
				t.Errorf("ancestor at own level = %d, want %d", got, in.ThreadNum())
			}
			if got := in.AncestorThreadNum(0); got != 0 {
				t.Errorf("ancestor at level 0 = %d, want 0 (initial thread)", got)
			}
			if got := in.AncestorThreadNum(9); got != -1 {
				t.Errorf("ancestor at absent level = %d, want -1", got)
			}
			if got := in.TeamSize(1); got != 3 {
				t.Errorf("team size at level 1 = %d, want 3", got)
			}
			if got := in.TeamSize(2); got != 2 {
				t.Errorf("team size at level 2 = %d, want 2", got)
			}
			if got := in.TeamSize(0); got != 1 {
				t.Errorf("team size at level 0 = %d, want 1", got)
			}
			if got := in.TeamSize(9); got != -1 {
				t.Errorf("team size at absent level = %d, want -1", got)
			}
		})
	})
}

func TestLevelInsideTask(t *testing.T) {
	r := newRT(t, Config{NumThreads: 2})
	r.Parallel(func(tc *ThreadCtx) {
		tc.Master(func() {
			tc.Task(func(in *ThreadCtx) {
				if in.Level() != 1 {
					t.Errorf("task context level = %d, want 1", in.Level())
				}
			})
			tc.Taskwait()
		})
	})
}
