package omp

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"goomp/internal/collector"
)

func TestLockMutualExclusion(t *testing.T) {
	r := newRT(t, Config{NumThreads: 4})
	var l Lock
	shared := 0
	r.Parallel(func(tc *ThreadCtx) {
		for i := 0; i < 1000; i++ {
			l.Acquire(tc)
			shared++
			l.Release()
		}
	})
	if shared != 4000 {
		t.Errorf("shared = %d, want 4000 (lock failed to serialize)", shared)
	}
}

func TestLockContentionTracksWaits(t *testing.T) {
	r := newRT(t, Config{NumThreads: 4})
	q := r.Collector().NewQueue()
	collector.Control(q, collector.ReqStart)
	var begins, ends atomic.Int64
	h := r.Collector().NewCallbackHandle(func(e collector.Event, ti *collector.ThreadInfo) {
		switch e {
		case collector.EventThrBeginLkwt:
			begins.Add(1)
		case collector.EventThrEndLkwt:
			ends.Add(1)
		}
	})
	collector.Register(q, collector.EventThrBeginLkwt, h)
	collector.Register(q, collector.EventThrEndLkwt, h)

	var l Lock
	r.Parallel(func(tc *ThreadCtx) {
		for i := 0; i < 200; i++ {
			l.Acquire(tc)
			// Hold briefly so other threads actually contend.
			for spin := 0; spin < 50; spin++ {
				_ = spin
			}
			l.Release()
		}
	})
	if begins.Load() != ends.Load() {
		t.Errorf("begin/end lock wait events unbalanced: %d vs %d",
			begins.Load(), ends.Load())
	}
	// Wait IDs only advance when a wait actually happened.
	var waits uint64
	for id := int32(0); id < 4; id++ {
		if ti := r.Collector().Thread(id); ti != nil {
			waits += ti.WaitID(collector.WaitLock)
		}
	}
	if waits != uint64(begins.Load()) {
		t.Errorf("lock wait IDs total %d, begin events %d", waits, begins.Load())
	}
}

func TestUncontendedLockNoWaitEvents(t *testing.T) {
	r := newRT(t, Config{NumThreads: 1})
	q := r.Collector().NewQueue()
	collector.Control(q, collector.ReqStart)
	var events atomic.Int64
	h := r.Collector().NewCallbackHandle(func(collector.Event, *collector.ThreadInfo) {
		events.Add(1)
	})
	collector.Register(q, collector.EventThrBeginLkwt, h)

	var l Lock
	r.Parallel(func(tc *ThreadCtx) {
		for i := 0; i < 100; i++ {
			l.Acquire(tc)
			l.Release()
		}
	})
	if events.Load() != 0 {
		t.Errorf("%d lock wait events without contention, want 0", events.Load())
	}
}

func TestLockNilContext(t *testing.T) {
	var l Lock
	l.Acquire(nil)
	if l.TryAcquire() {
		t.Error("TryAcquire succeeded on a held lock")
	}
	l.Release()
	if !l.TryAcquire() {
		t.Error("TryAcquire failed on a free lock")
	}
	l.Release()
}

func TestNestedLockReentrancy(t *testing.T) {
	r := newRT(t, Config{NumThreads: 2})
	var nl NestedLock
	r.Parallel(func(tc *ThreadCtx) {
		tc.Master(func() {
			nl.Acquire(tc)
			nl.Acquire(tc)
			nl.Acquire(tc)
			if nl.Depth() != 3 {
				t.Errorf("depth = %d, want 3", nl.Depth())
			}
			nl.Release()
			nl.Release()
			if nl.Depth() != 1 {
				t.Errorf("depth = %d, want 1", nl.Depth())
			}
			nl.Release()
		})
	})
	if nl.Depth() != 0 {
		t.Errorf("final depth = %d, want 0", nl.Depth())
	}
}

func TestNestedLockMutualExclusion(t *testing.T) {
	r := newRT(t, Config{NumThreads: 4})
	var nl NestedLock
	shared := 0
	r.Parallel(func(tc *ThreadCtx) {
		for i := 0; i < 300; i++ {
			nl.Acquire(tc)
			nl.Acquire(tc) // re-entry must not self-deadlock
			shared++
			nl.Release()
			nl.Release()
		}
	})
	if shared != 1200 {
		t.Errorf("shared = %d, want 1200", shared)
	}
}

func TestNestedLockTryAcquire(t *testing.T) {
	r := newRT(t, Config{NumThreads: 2})
	var nl NestedLock
	r.Parallel(func(tc *ThreadCtx) {
		if tc.ThreadNum() == 0 {
			if !nl.TryAcquire(tc) {
				t.Error("TryAcquire failed on free nested lock")
			}
			if !nl.TryAcquire(tc) {
				t.Error("TryAcquire failed on own nested lock")
			}
			tc.Barrier() // let thread 1 observe the held lock
			tc.Barrier()
			nl.Release()
			nl.Release()
		} else {
			tc.Barrier()
			if nl.TryAcquire(tc) {
				t.Error("TryAcquire succeeded on another thread's lock")
			}
			tc.Barrier()
		}
	})
}

func TestNestedLockReleaseUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("release of unheld nested lock did not panic")
		}
	}()
	var nl NestedLock
	nl.Release()
}

func TestCriticalSerializes(t *testing.T) {
	r := newRT(t, Config{NumThreads: 4})
	shared := 0
	r.Parallel(func(tc *ThreadCtx) {
		for i := 0; i < 500; i++ {
			tc.Critical("update", func() { shared++ })
		}
	})
	if shared != 2000 {
		t.Errorf("shared = %d, want 2000", shared)
	}
}

func TestCriticalNamesAreIndependent(t *testing.T) {
	r := newRT(t, Config{NumThreads: 2})
	la := r.criticalLock("a")
	lb := r.criticalLock("b")
	if la == lb {
		t.Error("distinct critical names share one lock")
	}
	if la != r.criticalLock("a") {
		t.Error("same critical name returned different locks")
	}
}

func TestCriticalWaitStateObserved(t *testing.T) {
	r := newRT(t, Config{NumThreads: 4})
	q := r.Collector().NewQueue()
	collector.Control(q, collector.ReqStart)
	var begins atomic.Int64
	h := r.Collector().NewCallbackHandle(func(e collector.Event, ti *collector.ThreadInfo) {
		begins.Add(1)
		// During the wait the thread must be in the critical wait state
		// with a nonzero wait ID.
		if st := ti.State(); st != collector.StateCriticalWait {
			t.Errorf("state during critical wait event = %v", st)
		}
		if ti.WaitID(collector.WaitCritical) == 0 {
			t.Error("critical wait ID is zero during wait")
		}
	})
	collector.Register(q, collector.EventThrBeginCtwt, h)

	// Deterministic contention: thread 0 holds the critical region's
	// lock across a barrier, so the other threads' Critical calls are
	// guaranteed to find it busy.
	l := r.criticalLock("hot")
	r.Parallel(func(tc *ThreadCtx) {
		if tc.ThreadNum() == 0 {
			l.Acquire(tc)
			tc.Barrier()
			time.Sleep(2 * time.Millisecond)
			l.Release()
		} else {
			tc.Barrier()
			tc.Critical("hot", func() {})
		}
	})
	if begins.Load() != 3 {
		t.Errorf("critical wait events = %d, want 3", begins.Load())
	}
}

func TestReductionCorrectness(t *testing.T) {
	r := newRT(t, Config{NumThreads: 4})
	var sum float64
	const n = 10000
	r.Parallel(func(tc *ThreadCtx) {
		local := 0.0
		tc.ForNoWait(n, func(i int) { local += float64(i) })
		tc.ReduceFloat64(&sum, local)
	})
	want := float64(n*(n-1)) / 2
	if sum != want {
		t.Errorf("reduction sum = %g, want %g", sum, want)
	}
}

func TestReductionProperty(t *testing.T) {
	f := func(vals []int32, pRaw uint8) bool {
		p := 1 + int(pRaw%6)
		r := New(Config{NumThreads: p})
		defer r.Close()
		var total int64
		var want int64
		for _, v := range vals {
			want += int64(v)
		}
		r.Parallel(func(tc *ThreadCtx) {
			var local int64
			tc.ForNoWait(len(vals), func(i int) { local += int64(vals[i]) })
			tc.ReduceInt64(&total, local)
		})
		return total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReductionStateDuringUpdate(t *testing.T) {
	r := newRT(t, Config{NumThreads: 2})
	var sawReduc atomic.Bool
	var sum int64
	r.Parallel(func(tc *ThreadCtx) {
		tc.Reduce(func() {
			if tc.Info().State() == collector.StateReduction {
				sawReduc.Store(true)
			}
			sum++
		})
	})
	if !sawReduc.Load() {
		t.Error("thread never observed in reduction state during update")
	}
	if sum != 2 {
		t.Errorf("sum = %d, want 2", sum)
	}
}

func TestAtomicAddInt64(t *testing.T) {
	r := newRT(t, Config{NumThreads: 4})
	var total int64
	r.Parallel(func(tc *ThreadCtx) {
		for i := 0; i < 5000; i++ {
			tc.AtomicAddInt64(&total, 1)
		}
	})
	if total != 20000 {
		t.Errorf("total = %d, want 20000", total)
	}
}

func TestAtomicAddFloat64(t *testing.T) {
	r := newRT(t, Config{NumThreads: 4})
	var acc AtomicFloat64
	r.Parallel(func(tc *ThreadCtx) {
		for i := 0; i < 2000; i++ {
			tc.AtomicAddFloat64(&acc, 0.5)
		}
	})
	if got := acc.Load(); got != 4000 {
		t.Errorf("accumulated = %g, want 4000", got)
	}
}

func TestAtomicFloat64StoreLoad(t *testing.T) {
	var a AtomicFloat64
	a.Store(3.25)
	if a.Load() != 3.25 {
		t.Errorf("Load = %g, want 3.25", a.Load())
	}
}

func TestAtomicEventsOption(t *testing.T) {
	// With AtomicEvents enabled and heavy contention, atomic wait
	// events appear; with the option off they never do (the paper's
	// default).
	run := func(enabled bool) int64 {
		r := New(Config{NumThreads: 4, AtomicEvents: enabled})
		defer r.Close()
		q := r.Collector().NewQueue()
		collector.Control(q, collector.ReqStart)
		var events atomic.Int64
		h := r.Collector().NewCallbackHandle(func(collector.Event, *collector.ThreadInfo) {
			events.Add(1)
		})
		collector.Register(q, collector.EventThrBeginAtwt, h)
		var total int64
		r.Parallel(func(tc *ThreadCtx) {
			for i := 0; i < 20000; i++ {
				tc.AtomicAddInt64(&total, 1)
			}
		})
		return events.Load()
	}
	if got := run(false); got != 0 {
		t.Errorf("atomic wait events with option off = %d, want 0", got)
	}
	// With the option on, events may or may not fire depending on
	// contention; the assertion is only that the path is exercised
	// without corrupting the counter, checked inside run.
	run(true)
}

func TestBarrierWaitIDsAdvance(t *testing.T) {
	r := newRT(t, Config{NumThreads: 2})
	r.Parallel(func(tc *ThreadCtx) {
		tc.Barrier()
		tc.Barrier()
	})
	// Each thread entered: 2 explicit barriers + 1 implicit
	// (region end) = 3 barrier waits.
	ti := r.Collector().Thread(1)
	if ti == nil {
		t.Fatal("no descriptor for thread 1")
	}
	if got := ti.WaitID(collector.WaitBarrier); got != 3 {
		t.Errorf("barrier wait ID = %d, want 3", got)
	}
}

func TestExplicitVsImplicitBarrierEvents(t *testing.T) {
	r := newRT(t, Config{NumThreads: 2})
	q := r.Collector().NewQueue()
	collector.Control(q, collector.ReqStart)
	var ebar, ibar atomic.Int64
	h := r.Collector().NewCallbackHandle(func(e collector.Event, ti *collector.ThreadInfo) {
		switch e {
		case collector.EventThrBeginEBar:
			ebar.Add(1)
		case collector.EventThrBeginIBar:
			ibar.Add(1)
		}
	})
	collector.Register(q, collector.EventThrBeginEBar, h)
	collector.Register(q, collector.EventThrBeginIBar, h)

	r.Parallel(func(tc *ThreadCtx) {
		tc.Barrier() // explicit
		tc.For(10, func(int) {})
	})
	// Explicit: 2 threads × 1 barrier. Implicit: 2 threads × (loop end
	// + region end) = 4. The distinct runtime entry points let the
	// runtime tell them apart (§IV-C.2).
	if ebar.Load() != 2 {
		t.Errorf("explicit barrier begin events = %d, want 2", ebar.Load())
	}
	if ibar.Load() != 4 {
		t.Errorf("implicit barrier begin events = %d, want 4", ibar.Load())
	}
}

func TestForkJoinEventsPerRegion(t *testing.T) {
	r := newRT(t, Config{NumThreads: 4})
	q := r.Collector().NewQueue()
	collector.Control(q, collector.ReqStart)
	var forks, joins atomic.Int64
	h := r.Collector().NewCallbackHandle(func(e collector.Event, ti *collector.ThreadInfo) {
		if ti.ID != 0 {
			t.Errorf("fork/join callback on thread %d; only the master may fire these", ti.ID)
		}
		if e == collector.EventFork {
			forks.Add(1)
		} else {
			joins.Add(1)
		}
	})
	collector.Register(q, collector.EventFork, h)
	collector.Register(q, collector.EventJoin, h)
	const regions = 25
	for k := 0; k < regions; k++ {
		r.Parallel(func(tc *ThreadCtx) {})
	}
	if forks.Load() != regions || joins.Load() != regions {
		t.Errorf("forks = %d, joins = %d, want %d each", forks.Load(), joins.Load(), regions)
	}
	if got := r.Collector().EventCount(collector.EventFork); got != regions {
		t.Errorf("EventCount(fork) = %d, want %d", got, regions)
	}
}

func TestIdleEventsBalance(t *testing.T) {
	r := newRT(t, Config{NumThreads: 3})
	q := r.Collector().NewQueue()
	collector.Control(q, collector.ReqStart)
	var begin, end atomic.Int64
	h := r.Collector().NewCallbackHandle(func(e collector.Event, ti *collector.ThreadInfo) {
		if e == collector.EventThrBeginIdle {
			begin.Add(1)
		} else {
			end.Add(1)
		}
	})
	collector.Register(q, collector.EventThrBeginIdle, h)
	collector.Register(q, collector.EventThrEndIdle, h)

	const regions = 10
	for k := 0; k < regions; k++ {
		r.Parallel(func(tc *ThreadCtx) {})
	}
	// Each of the 2 slaves ends idle once per region; begin-idle fires
	// once at creation plus once per region (the last of which may
	// still be in flight when the master returns, so allow the tail).
	if end.Load() != 2*regions {
		t.Errorf("end-idle events = %d, want %d", end.Load(), 2*regions)
	}
	if b := begin.Load(); b < 2*(regions-1) || b > 2*(regions+1) {
		t.Errorf("begin-idle events = %d, want about %d", b, 2*regions)
	}
}
