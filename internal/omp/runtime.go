// Package omp implements an OpenMP-style fork-join runtime library: the
// substrate the OpenMP Collector API lives in. It is the Go counterpart
// of the OpenUH OpenMP runtime the paper instruments — a persistent pool
// of worker "threads" (goroutines) that sleep between parallel regions,
// a fork entry point that packages region bodies the way OpenUH's
// compiler outlining does (the body closure plays the role of the
// outlined procedure __ompdo_main1), worksharing loop schedulers,
// implicit and explicit barriers, user locks, named critical regions,
// reductions, ordered sections, single/master constructs and atomic
// updates.
//
// Every construct calls into goomp/internal/collector at the same
// points OpenUH's runtime calls __ompc_event and __ompc_set_state, so a
// collector tool observes fork/join, barrier, wait and idle events and
// may asynchronously query thread states, wait IDs and parallel region
// IDs.
package omp

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"goomp/internal/collector"
	"goomp/internal/dl"
)

// Config holds the runtime's internal control variables (the OpenMP
// ICVs that matter here) and implementation toggles.
type Config struct {
	// NumThreads is the default team size for parallel regions. It is
	// also the initial worker-pool size; the pool grows on demand when
	// a region requests more threads, mirroring the paper's dynamic
	// thread-count handling (§IV-C.1).
	NumThreads int

	// Nested enables true nested parallel regions with their own teams,
	// fork events and parent-region IDs. When false (the default, and
	// the paper's behaviour), nested regions are serialized: the
	// encountering thread runs the region as a team of one and no fork
	// event is triggered.
	Nested bool

	// AtomicEvents enables THR_BEGIN/END_ATWT events and the atomic
	// wait state. The paper's implementation omitted these because of
	// their overhead; they are off by default here for the same reason.
	AtomicEvents bool

	// LoopEvents enables the worksharing-loop extension events
	// (OMP_EVENT_THR_BEGIN/END_LOOP) and per-thread loop IDs, the
	// loop-construct support the paper's §VI calls for. Off by
	// default: loops are frequent, so the events are opt-in.
	LoopEvents bool

	// SpinBarrier selects the active wait policy
	// (OMP_WAIT_POLICY=active): barrier waiters use a larger bounded
	// spin budget before parking. The waiter always parks eventually,
	// so oversubscribed teams cannot live-lock; see BarrierSpin.
	SpinBarrier bool

	// TreeBarrierThreshold is the team size above which team barriers
	// use the fixed-degree combining tree instead of a central
	// barrier. Zero selects the default (4); negative disables the
	// tree barrier entirely. GOMP_TREE_THRESHOLD overrides it.
	TreeBarrierThreshold int

	// BarrierSpin bounds the hybrid barrier waiter's spin phase: the
	// number of release-flag checks (yielding periodically) before the
	// waiter parks. Zero selects the policy default (active 4096,
	// passive 256); negative means never spin — central teams fall
	// back to the blocking (condition-variable) barrier and tree
	// waiters park immediately. GOMP_BARRIER_SPIN overrides it.
	BarrierSpin int

	// Schedule and Chunk are the ICVs consulted by ScheduleRuntime
	// loops.
	Schedule Schedule
	Chunk    int

	// StealThreshold opts dynamic loops into the work-stealing
	// schedule: a ScheduleDynamic loop with at least this many
	// iterations runs under ScheduleSteal (identical chunk boundaries,
	// per-thread deques with steal-half rebalancing; see steal.go).
	// Zero (the default) disables the fast path, keeping dynamic
	// loops' event streams bit-identical to earlier releases.
	// GOMP_STEAL_THRESHOLD overrides it.
	StealThreshold int

	// CallbackBudget arms the collector's callback watchdog: a sampled
	// event dispatch that observes a tool callback running longer than
	// this budget trips a circuit breaker that pauses event generation.
	// Zero (the default) disarms the watchdog.
	CallbackBudget time.Duration

	// WatchdogSample is the watchdog's dispatch-sampling interval: one
	// dispatch in this many (per event, rounded up to a power of two)
	// is timed. Zero keeps the collector default; 1 times every
	// dispatch.
	WatchdogSample int

	// OverheadCeiling is the target maximum profiling overhead as a
	// fraction of wall time in (0, 1], consumed by a tool attaching
	// with tool.AttachRuntime: it arms the tool's overhead governor,
	// which enforces the ceiling by degrading the measurement (sampler
	// rate, stack capture, shed events, counters-only) rather than
	// letting cost grow unbounded. Zero (the default) leaves profiling
	// ungoverned. GOMP_OVERHEAD_CEILING overrides it ("0.02" or "2%").
	OverheadCeiling float64
}

// RT is an OpenMP runtime instance: a thread pool, its collector, and
// the bookkeeping for parallel-region IDs and region-call statistics.
type RT struct {
	cfg Config
	col *collector.Collector
	seq uint64 // process-wide instance number for supervision labels

	mu      sync.Mutex // guards pool growth and shutdown
	workers []*worker  // slaves; global thread i is workers[i-1]
	closed  bool

	// The master thread is the only thread that can run in both serial
	// and parallel mode, so it has two thread descriptors; the
	// collector binding switches between them at fork and join.
	masterSerial   *collector.ThreadInfo
	masterParallel *collector.ThreadInfo

	regionSeq   atomic.Uint64 // parallel region ID generator (IDs start at 1)
	regionCalls atomic.Uint64 // dynamic count of region invocations
	nestedCalls atomic.Uint64 // nested (serialized or true) region invocations

	siteMu sync.Mutex
	sites  map[uintptr]*RegionSite

	// nestedFree pools the transient descriptors of true-nested team
	// threads, keyed by thread number within the nested team. Reusing
	// descriptors keeps per-descriptor measurement state (the trace
	// buffer an attached tool pins at first event) bounded by the peak
	// number of concurrent nested threads instead of growing with
	// every nested region invocation.
	nestedMu   sync.Mutex
	nestedFree map[int32][]*collector.ThreadInfo

	// tdqFree pools per-team task-deque slices (and the rings hanging
	// off them) across regions, so steady-state task submission is
	// allocation-free. A slice is recycled only after a clean join —
	// after a region panic the deques may still hold queued tasks and
	// are dropped instead.
	tdqMu   sync.Mutex
	tdqFree [][]taskDeque

	symbol   string // dl symbol this runtime registered, if any
	critMu   sync.Mutex
	critical map[string]*Lock
}

// RegionSite records one static parallel region: the source location of
// the rt.Parallel call, standing in for the address of the compiler's
// outlined procedure. The per-site call counts generate Table I.
type RegionSite struct {
	PC    uintptr
	File  string
	Line  int
	Calls uint64
}

// New creates a runtime with the given configuration. A zero or
// negative NumThreads defaults to runtime.NumCPU(). The worker pool is
// created lazily at the first parallel region, as in OpenUH where
// threads are created when the first region is encountered.
func New(cfg Config) *RT {
	if cfg.NumThreads <= 0 {
		cfg.NumThreads = runtime.NumCPU()
	}
	if cfg.Chunk <= 0 {
		cfg.Chunk = 1
	}
	var colOpts []collector.Option
	if cfg.CallbackBudget > 0 {
		colOpts = append(colOpts, collector.WithCallbackBudget(cfg.CallbackBudget))
	}
	if cfg.WatchdogSample > 0 {
		colOpts = append(colOpts, collector.WithWatchdogSampling(cfg.WatchdogSample))
	}
	r := &RT{
		cfg:        cfg,
		seq:        rtSeq.Add(1),
		col:        collector.New(colOpts...),
		sites:      make(map[uintptr]*RegionSite),
		critical:   make(map[string]*Lock),
		nestedFree: make(map[int32][]*collector.ThreadInfo),
	}
	// The serial-mode master descriptor exists from runtime creation so
	// that a tool may initialize the collector API before the OpenMP
	// runtime itself has created any threads.
	r.masterSerial = collector.NewThreadInfo(0)
	r.masterSerial.SetState(collector.StateSerial)
	r.masterParallel = collector.NewThreadInfo(0)
	r.col.BindThread(r.masterSerial)
	return r
}

// Collector returns the runtime's collector-API instance (what a tool
// obtains by looking up the exported symbol).
func (r *RT) Collector() *collector.Collector { return r.col }

// MasterDescriptors returns the master thread's two thread
// descriptors: the serial-mode one (bound outside parallel regions)
// and the parallel-mode one (bound while the master executes a region,
// and the holder of the master's wait IDs).
func (r *RT) MasterDescriptors() (serial, parallel *collector.ThreadInfo) {
	return r.masterSerial, r.masterParallel
}

// Config returns the runtime's configuration.
func (r *RT) Config() Config { return r.cfg }

// RegisterSymbol exports the collector API in the simulated dynamic
// linker under collector.SymbolName, as OpenUH's runtime library
// exports __omp_collector_api. Only one runtime per process can hold
// the symbol; Close releases it.
func (r *RT) RegisterSymbol() error {
	if err := dl.Register(collector.SymbolName, r.col); err != nil {
		return err
	}
	r.symbol = collector.SymbolName
	return nil
}

// Close shuts the worker pool down and releases the dl symbol. The
// runtime must not be inside a parallel region.
func (r *RT) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	ws := r.workers
	r.workers = nil
	r.mu.Unlock()
	for _, w := range ws {
		close(w.work)
		r.col.UnbindThread(w.td.ID)
	}
	if r.symbol != "" {
		dl.Unregister(r.symbol)
		r.symbol = ""
	}
}

// RegionCalls returns the dynamic number of (non-nested) parallel
// region invocations so far.
func (r *RT) RegionCalls() uint64 { return r.regionCalls.Load() }

// NestedRegionCalls returns the number of nested region invocations.
func (r *RT) NestedRegionCalls() uint64 { return r.nestedCalls.Load() }

// Sites returns a snapshot of the static parallel regions encountered
// so far, sorted by file and line. len(Sites()) is the "# parallel
// regions" column of Table I; the summed Calls is "# region calls".
func (r *RT) Sites() []RegionSite {
	r.siteMu.Lock()
	out := make([]RegionSite, 0, len(r.sites))
	for _, s := range r.sites {
		out = append(out, *s)
	}
	r.siteMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// ResetStats clears the region-call statistics (the sites map and the
// dynamic counters), for harnesses that run warmup iterations.
func (r *RT) ResetStats() {
	r.siteMu.Lock()
	r.sites = make(map[uintptr]*RegionSite)
	r.siteMu.Unlock()
	r.regionCalls.Store(0)
	r.nestedCalls.Store(0)
}

func (r *RT) noteSite(pc uintptr) {
	r.siteMu.Lock()
	s := r.sites[pc]
	if s == nil {
		file, line := "?", 0
		if fn := runtime.FuncForPC(pc); fn != nil {
			file, line = fn.FileLine(pc)
		}
		s = &RegionSite{PC: pc, File: file, Line: line}
		r.sites[pc] = s
	}
	s.Calls++
	r.siteMu.Unlock()
}

// ensureWorkers grows the pool so at least n-1 slaves exist. Called
// with the fork event already raised: in the paper the fork event is
// triggered just before pthread_create when the runtime needs to create
// threads.
func (r *RT) ensureWorkers(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		panic("omp: parallel region on closed runtime")
	}
	for id := len(r.workers) + 1; id < n; id++ {
		w := &worker{
			rt:   r,
			td:   collector.NewThreadInfo(int32(id)),
			work: make(chan workItem, 1),
		}
		// The descriptor is set up (in the overhead state) just before
		// the thread is created, so a state query during creation still
		// gets a correct answer.
		r.col.BindThread(w.td)
		r.workers = append(r.workers, w)
		go w.loop()
	}
}

// Parallel runs fn as a parallel region on the default team size. It
// must be called from serial (non-region) context; inside a region use
// ThreadCtx.Parallel for a nested region.
func (r *RT) Parallel(fn func(tc *ThreadCtx)) {
	r.parallel(callerPC(), 0, fn)
}

// ParallelN runs fn as a parallel region with a team of n threads
// (n <= 0 means the configured default).
func (r *RT) ParallelN(n int, fn func(tc *ThreadCtx)) {
	r.parallel(callerPC(), n, fn)
}

// ParallelFor is the combined "parallel for" construct: it forks a team
// and statically distributes iterations [0, n) over it.
func (r *RT) ParallelFor(n int, body func(tc *ThreadCtx, i int)) {
	r.parallel(callerPC(), 0, func(tc *ThreadCtx) {
		tc.For(n, func(i int) { body(tc, i) })
	})
}

func callerPC() uintptr {
	var pcs [1]uintptr
	// Skip runtime.Callers, callerPC and the exported wrapper: the site
	// is the user's call.
	if runtime.Callers(3, pcs[:]) == 0 {
		return 0
	}
	return pcs[0]
}

// parallel is __ompc_fork: the master packages the region, wakes the
// slaves, executes the region itself as thread 0, and joins at the
// implicit barrier that ends the region.
func (r *RT) parallel(site uintptr, n int, fn func(tc *ThreadCtx)) {
	if n <= 0 {
		n = r.cfg.NumThreads
	}
	master := r.masterSerial

	// The master transitions from the serial state to the overhead
	// state while it prepares the fork: this happens whether or not a
	// collector is attached (state tracking is always on).
	master.SetState(collector.StateOverhead)

	r.regionCalls.Add(1)
	r.noteSite(site)

	// The team descriptor is prepared before the fork event so that
	// the event (and any query made from its callback) already sees
	// the region and its site.
	info := &collector.TeamInfo{
		RegionID:       r.regionSeq.Add(1),
		ParentRegionID: 0, // non-nested regions always have parent ID zero
		Size:           int32(n),
		SitePC:         site,
	}
	team := newTeam(r, n, info)
	master.SetTeam(info)

	// Conceptually there is a fork at the beginning of each parallel
	// region even when no new threads are created, so the fork event is
	// triggered on every region entry, before any thread creation. The
	// fork and join callbacks are only invoked by the master thread.
	r.col.Event(master, collector.EventFork)
	r.ensureWorkers(n)

	// Wake the slaves: the master updates the slave thread descriptors
	// with the outlined procedure while in the overhead state.
	for i := 1; i < n; i++ {
		r.workers[i-1].work <- workItem{team: team, tid: i, fn: fn}
	}

	// The master switches to its parallel-mode descriptor and runs the
	// region as thread 0. This per-region rebind is on the fork hot
	// path: BindThread stores into an existing descriptor slot under a
	// read lock, and an attached tool's bind hook re-validates its
	// pinned trace buffer with a single atomic load.
	mp := r.masterParallel
	mp.SetState(collector.StateOverhead)
	mp.SetTeam(info)
	r.col.BindThread(mp)
	// The serial-mode descriptor leaves region scope once the
	// parallel-mode descriptor takes over.
	master.SetTeam(nil)

	tc := &ThreadCtx{rt: r, team: team, id: 0, td: mp, level: 1}
	mp.SetState(collector.StateWorking)
	runRegionBody(tc, fn)
	tc.implicitBarrier()

	// Join: as soon as the master leaves the implicit barrier at the
	// end of the parallel region its state is set to the overhead state
	// and the join event is triggered.
	mp.SetState(collector.StateOverhead)
	r.col.Event(mp, collector.EventJoin)
	mp.SetTeam(nil)
	r.col.BindThread(master)
	master.SetState(collector.StateSerial)

	// A panic raised by any thread's region body is re-raised on the
	// master once the fork-join structure has been restored.
	if p := team.firstPanic(); p != nil {
		panic(p)
	}
	r.putTaskDeques(team.tasks.deq)
}

// getTaskDeques returns a per-team task-deque slice for a team of
// size threads, recycling one from the free list when it fits. Every
// deque comes with its ring installed (fresh or carried over), so the
// owner's push path never checks for nil.
func (r *RT) getTaskDeques(size int) []taskDeque {
	r.tdqMu.Lock()
	for i := len(r.tdqFree) - 1; i >= 0; i-- {
		if cap(r.tdqFree[i]) >= size {
			d := r.tdqFree[i][:size]
			last := len(r.tdqFree) - 1
			r.tdqFree[i] = r.tdqFree[last]
			r.tdqFree = r.tdqFree[:last]
			r.tdqMu.Unlock()
			for j := range d {
				if d[j].ring.Load() == nil {
					d[j].ring.Store(newTaskRing(initTaskRing))
				}
			}
			return d
		}
	}
	r.tdqMu.Unlock()
	d := make([]taskDeque, size)
	for j := range d {
		d[j].ring.Store(newTaskRing(initTaskRing))
	}
	return d
}

// putTaskDeques returns a team's deque slice to the free list after a
// clean join (all deques drained by the closing barrier).
func (r *RT) putTaskDeques(d []taskDeque) {
	if d == nil {
		return
	}
	r.tdqMu.Lock()
	if len(r.tdqFree) < 16 {
		r.tdqFree = append(r.tdqFree, d)
	}
	r.tdqMu.Unlock()
}

// worker is a slave OpenMP thread: a goroutine that survives, sleeping,
// between non-nested parallel regions.
type worker struct {
	rt   *RT
	td   *collector.ThreadInfo
	work chan workItem
}

type workItem struct {
	team *Team
	tid  int
	fn   func(tc *ThreadCtx)
}

func (w *worker) loop() {
	col := w.rt.col
	// As soon as the thread is created it is set to the idle state and
	// the begin-idle event triggers.
	w.td.SetState(collector.StateIdle)
	col.Event(w.td, collector.EventThrBeginIdle)

	for item := range w.work {
		col.Event(w.td, collector.EventThrEndIdle)
		w.td.SetTeam(item.team.info)
		w.td.SetState(collector.StateWorking)

		tc := &ThreadCtx{rt: w.rt, team: item.team, id: item.tid, td: w.td, level: 1}
		runRegionBody(tc, item.fn)
		tc.implicitBarrier()

		w.td.SetTeam(nil)
		w.td.SetState(collector.StateIdle)
		col.Event(w.td, collector.EventThrBeginIdle)
	}
}

// ThreadCtx is the per-thread view of a parallel region: the explicit
// stand-in for the gtid argument and thread-local runtime state the
// compiler passes to an outlined procedure.
type ThreadCtx struct {
	rt   *RT
	team *Team
	id   int
	td   *collector.ThreadInfo

	loopSeq   uint64 // worksharing construct counter (must match across the team)
	singleSeq uint64
	group     *taskGroup // children created by this context (lazily made)

	level  int        // nesting depth of active parallel regions (outermost is 1)
	parent *ThreadCtx // context of the encountering thread for nested regions

	slabel string // lazily cached hang-supervision label (superWho)
}

// ThreadNum returns the thread's number within its team (master is 0).
func (tc *ThreadCtx) ThreadNum() int { return tc.id }

// NumThreads returns the team size.
func (tc *ThreadCtx) NumThreads() int { return tc.team.size }

// RegionID returns the ID of the parallel region the thread is
// executing.
func (tc *ThreadCtx) RegionID() uint64 { return tc.team.info.RegionID }

// Info returns the thread's collector descriptor (for tools and tests).
func (tc *ThreadCtx) Info() *collector.ThreadInfo { return tc.td }

// Parallel executes a nested parallel region. By default nested
// regions are serialized — the encountering thread runs fn as a team of
// one and no fork event is triggered, matching the paper's compiler.
// With Config.Nested, a true nested team of n goroutines is created,
// a fork event is generated, and the nested team's parent region ID is
// the current region ID of the team that spawned it.
func (tc *ThreadCtx) Parallel(n int, fn func(tc *ThreadCtx)) {
	r := tc.rt
	r.nestedCalls.Add(1)
	if !r.cfg.Nested || n == 1 {
		info := &collector.TeamInfo{
			// A serialized nested region still gets a region ID so
			// tools can tell it apart, but its team is the one thread.
			RegionID:       r.regionSeq.Add(1),
			ParentRegionID: tc.team.info.RegionID,
			Size:           1,
		}
		team := newTeam(r, 1, info)
		prevTeam := tc.td.Team()
		tc.td.SetTeam(info)
		inner := &ThreadCtx{rt: r, team: team, id: 0, td: tc.td, level: tc.level + 1, parent: tc}
		fn(inner)
		inner.implicitBarrier()
		tc.td.SetTeam(prevTeam)
		r.putTaskDeques(team.tasks.deq)
		return
	}
	if n <= 0 {
		n = r.cfg.NumThreads
	}
	// True nesting: a fork event is generated whenever a nested
	// parallel region and its OpenMP threads are created.
	r.col.Event(tc.td, collector.EventFork)
	info := &collector.TeamInfo{
		RegionID:       r.regionSeq.Add(1),
		ParentRegionID: tc.team.info.RegionID,
		Size:           int32(n),
	}
	team := newTeam(r, n, info)
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			// Nested slaves are transient goroutines with pooled
			// descriptors; they are not bound in the collector's global
			// thread table (their IDs would collide with the flat
			// numbering), but carry team info for region-ID queries.
			td := r.getNestedDesc(int32(tid))
			defer r.putNestedDesc(td)
			td.SetTeam(info)
			td.SetState(collector.StateWorking)
			itc := &ThreadCtx{rt: r, team: team, id: tid, td: td, level: tc.level + 1, parent: tc}
			runRegionBody(itc, fn)
			itc.implicitBarrier()
		}(i)
	}
	prevTeam := tc.td.Team()
	tc.td.SetTeam(info)
	inner := &ThreadCtx{rt: r, team: team, id: 0, td: tc.td, level: tc.level + 1, parent: tc}
	runRegionBody(inner, fn)
	inner.implicitBarrier()
	wg.Wait()
	tc.td.SetTeam(prevTeam)
	r.col.Event(tc.td, collector.EventJoin)
	if p := team.firstPanic(); p != nil {
		panic(p)
	}
	r.putTaskDeques(team.tasks.deq)
}

// getNestedDesc returns a descriptor for a true-nested team thread
// with number tid, reusing a pooled one when available. A pooled
// descriptor is handed to one goroutine at a time, so any measurement
// state pinned on it keeps a single writer.
func (r *RT) getNestedDesc(tid int32) *collector.ThreadInfo {
	r.nestedMu.Lock()
	if free := r.nestedFree[tid]; len(free) > 0 {
		td := free[len(free)-1]
		r.nestedFree[tid] = free[:len(free)-1]
		r.nestedMu.Unlock()
		td.SetState(collector.StateOverhead)
		return td
	}
	r.nestedMu.Unlock()
	return collector.NewThreadInfo(tid)
}

// putNestedDesc returns a transient descriptor to the pool once its
// nested region completes.
func (r *RT) putNestedDesc(td *collector.ThreadInfo) {
	td.SetTeam(nil)
	td.SetState(collector.StateIdle)
	r.nestedMu.Lock()
	r.nestedFree[td.ID] = append(r.nestedFree[td.ID], td)
	r.nestedMu.Unlock()
}

// String identifies the runtime in diagnostics.
func (r *RT) String() string {
	return fmt.Sprintf("omp.RT(threads=%d, nested=%v)", r.cfg.NumThreads, r.cfg.Nested)
}
