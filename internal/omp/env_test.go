package omp

import (
	"strings"
	"sync/atomic"
	"testing"
)

func envLookup(m map[string]string) func(string) (string, bool) {
	return func(k string) (string, bool) {
		v, ok := m[k]
		return v, ok
	}
}

func TestConfigFromEnvFull(t *testing.T) {
	cfg, err := ConfigFromEnv(Config{}, envLookup(map[string]string{
		"OMP_NUM_THREADS":    "8",
		"OMP_SCHEDULE":       "dynamic,16",
		"OMP_NESTED":         "true",
		"OMP_WAIT_POLICY":    "active",
		"GOMP_ATOMIC_EVENTS": "on",
		"GOMP_LOOP_EVENTS":   "1",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumThreads != 8 || cfg.Schedule != ScheduleDynamic || cfg.Chunk != 16 {
		t.Errorf("threads/schedule wrong: %+v", cfg)
	}
	if !cfg.Nested || !cfg.SpinBarrier || !cfg.AtomicEvents || !cfg.LoopEvents {
		t.Errorf("booleans wrong: %+v", cfg)
	}
}

func TestConfigFromEnvDefaultsPreserved(t *testing.T) {
	base := Config{NumThreads: 3, Schedule: ScheduleGuided, Chunk: 7, Nested: true}
	cfg, err := ConfigFromEnv(base, envLookup(nil))
	if err != nil {
		t.Fatal(err)
	}
	if cfg != base {
		t.Errorf("empty env changed config: %+v vs %+v", cfg, base)
	}
}

func TestConfigFromEnvPassivePolicy(t *testing.T) {
	cfg, err := ConfigFromEnv(Config{SpinBarrier: true}, envLookup(map[string]string{
		"OMP_WAIT_POLICY": "PASSIVE",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SpinBarrier {
		t.Error("passive policy did not clear SpinBarrier")
	}
}

func TestConfigFromEnvErrors(t *testing.T) {
	bad := []map[string]string{
		{"OMP_NUM_THREADS": "zero"},
		{"OMP_NUM_THREADS": "0"},
		{"OMP_NUM_THREADS": "-2"},
		{"OMP_SCHEDULE": "fancy"},
		{"OMP_SCHEDULE": "static,0"},
		{"OMP_SCHEDULE": "static,x"},
		{"OMP_NESTED": "maybe"},
		{"OMP_WAIT_POLICY": "spinny"},
		{"GOMP_ATOMIC_EVENTS": "2"},
		{"GOMP_LOOP_EVENTS": "nah"},
		{"GOMP_STEAL_THRESHOLD": "-1"},
		{"GOMP_STEAL_THRESHOLD": "lots"},
	}
	for _, env := range bad {
		if _, err := ConfigFromEnv(Config{}, envLookup(env)); err == nil {
			t.Errorf("env %v accepted", env)
		}
	}
}

func TestParseSchedule(t *testing.T) {
	cases := []struct {
		in    string
		sched Schedule
		chunk int
		ok    bool
	}{
		{"static", ScheduleStatic, 0, true},
		{"STATIC, 4", ScheduleStatic, 4, true},
		{"dynamic,1", ScheduleDynamic, 1, true},
		{"guided , 8", ScheduleGuided, 8, true},
		{"steal", ScheduleSteal, 0, true},
		{"Steal, 2", ScheduleSteal, 2, true},
		{"auto", 0, 0, false},
		{"dynamic,", 0, 0, false},
	}
	for _, c := range cases {
		sched, chunk, err := ParseSchedule(c.in)
		if c.ok != (err == nil) {
			t.Errorf("%q: err = %v", c.in, err)
			continue
		}
		if c.ok && (sched != c.sched || chunk != c.chunk) {
			t.Errorf("%q: got (%v, %d), want (%v, %d)", c.in, sched, chunk, c.sched, c.chunk)
		}
	}
}

// Unknown schedule kinds fail with an error that names the accepted
// kinds, so a typo in OMP_SCHEDULE is diagnosable from the message.
func TestParseScheduleUnknownKindError(t *testing.T) {
	_, _, err := ParseSchedule("fancy,4")
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	for _, kind := range []string{"static", "dynamic", "guided", "steal"} {
		if !strings.Contains(err.Error(), kind) {
			t.Errorf("error %q does not mention accepted kind %q", err, kind)
		}
	}
}

// Schedule.String is bounds-checked: out-of-range values render as a
// diagnostic instead of panicking.
func TestScheduleStringBounds(t *testing.T) {
	for _, s := range []Schedule{ScheduleStatic, ScheduleDynamic, ScheduleGuided, ScheduleRuntime, ScheduleSteal} {
		if v := s.String(); v == "" {
			t.Errorf("schedule %d renders empty", s)
		}
	}
	if v := Schedule(99).String(); v == "" {
		t.Error("out-of-range schedule renders empty")
	}
	if v := Schedule(-1).String(); v == "" {
		t.Error("negative schedule renders empty")
	}
}

func TestConfigFromEnvStealThreshold(t *testing.T) {
	cfg, err := ConfigFromEnv(Config{}, envLookup(map[string]string{
		"OMP_SCHEDULE":         "steal,2",
		"GOMP_STEAL_THRESHOLD": " 4096 ",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Schedule != ScheduleSteal || cfg.Chunk != 2 || cfg.StealThreshold != 4096 {
		t.Errorf("steal env wrong: %+v", cfg)
	}
}

// An env-configured steal schedule actually drives a loop: every
// iteration runs exactly once under schedule(runtime).
func TestEnvConfiguredStealRuns(t *testing.T) {
	cfg, err := ConfigFromEnv(Config{}, envLookup(map[string]string{
		"OMP_NUM_THREADS": "4",
		"OMP_SCHEDULE":    "steal,1",
	}))
	if err != nil {
		t.Fatal(err)
	}
	r := New(cfg)
	defer r.Close()
	counts := make([]int32, 200)
	r.Parallel(func(tc *ThreadCtx) {
		tc.ForSched(len(counts), ScheduleRuntime, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
}

func TestEnvConfiguredRuntimeRuns(t *testing.T) {
	cfg, err := ConfigFromEnv(Config{}, envLookup(map[string]string{
		"OMP_NUM_THREADS": "3",
		"OMP_SCHEDULE":    "guided,2",
	}))
	if err != nil {
		t.Fatal(err)
	}
	r := New(cfg)
	defer r.Close()
	counts := make([]int32, 100)
	r.Parallel(func(tc *ThreadCtx) {
		tc.ForSched(100, ScheduleRuntime, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				counts[i]++
			}
		})
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
}

func TestParseOverheadCeiling(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"0.02", 0.02, true},
		{" 0.5 ", 0.5, true},
		{"1", 1, true},
		{"2%", 0.02, true},
		{"100%", 1, true},
		{" 5 % ", 0.05, true},
		{"0", 0, false},
		{"0%", 0, false},
		{"-0.1", 0, false},
		{"1.5", 0, false},
		{"150%", 0, false},
		{"lots", 0, false},
		{"%", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseOverheadCeiling(c.in)
		if c.ok {
			if err != nil || got != c.want {
				t.Errorf("ParseOverheadCeiling(%q) = %v, %v; want %v", c.in, got, err, c.want)
			}
			continue
		}
		if err == nil {
			t.Errorf("ParseOverheadCeiling(%q) accepted as %v", c.in, got)
			continue
		}
		// The error must name the knob, matching the OMP_SCHEDULE style:
		// a typo is diagnosable from the message alone.
		if !strings.Contains(err.Error(), "GOMP_OVERHEAD_CEILING") || !strings.Contains(err.Error(), c.in) {
			t.Errorf("ParseOverheadCeiling(%q) error does not name the knob and value: %v", c.in, err)
		}
	}
}

func TestConfigFromEnvOverheadCeiling(t *testing.T) {
	cfg, err := ConfigFromEnv(Config{}, envLookup(map[string]string{
		"GOMP_OVERHEAD_CEILING": "2%",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.OverheadCeiling != 0.02 {
		t.Errorf("ceiling = %v", cfg.OverheadCeiling)
	}
	// Malformed values are errors, never silent defaults.
	for _, v := range []string{"0", "nope", "120%"} {
		if _, err := ConfigFromEnv(Config{}, envLookup(map[string]string{
			"GOMP_OVERHEAD_CEILING": v,
		})); err == nil {
			t.Errorf("GOMP_OVERHEAD_CEILING=%q accepted", v)
		}
	}
}
