package omp

import (
	"testing"
)

func envLookup(m map[string]string) func(string) (string, bool) {
	return func(k string) (string, bool) {
		v, ok := m[k]
		return v, ok
	}
}

func TestConfigFromEnvFull(t *testing.T) {
	cfg, err := ConfigFromEnv(Config{}, envLookup(map[string]string{
		"OMP_NUM_THREADS":    "8",
		"OMP_SCHEDULE":       "dynamic,16",
		"OMP_NESTED":         "true",
		"OMP_WAIT_POLICY":    "active",
		"GOMP_ATOMIC_EVENTS": "on",
		"GOMP_LOOP_EVENTS":   "1",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumThreads != 8 || cfg.Schedule != ScheduleDynamic || cfg.Chunk != 16 {
		t.Errorf("threads/schedule wrong: %+v", cfg)
	}
	if !cfg.Nested || !cfg.SpinBarrier || !cfg.AtomicEvents || !cfg.LoopEvents {
		t.Errorf("booleans wrong: %+v", cfg)
	}
}

func TestConfigFromEnvDefaultsPreserved(t *testing.T) {
	base := Config{NumThreads: 3, Schedule: ScheduleGuided, Chunk: 7, Nested: true}
	cfg, err := ConfigFromEnv(base, envLookup(nil))
	if err != nil {
		t.Fatal(err)
	}
	if cfg != base {
		t.Errorf("empty env changed config: %+v vs %+v", cfg, base)
	}
}

func TestConfigFromEnvPassivePolicy(t *testing.T) {
	cfg, err := ConfigFromEnv(Config{SpinBarrier: true}, envLookup(map[string]string{
		"OMP_WAIT_POLICY": "PASSIVE",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SpinBarrier {
		t.Error("passive policy did not clear SpinBarrier")
	}
}

func TestConfigFromEnvErrors(t *testing.T) {
	bad := []map[string]string{
		{"OMP_NUM_THREADS": "zero"},
		{"OMP_NUM_THREADS": "0"},
		{"OMP_NUM_THREADS": "-2"},
		{"OMP_SCHEDULE": "fancy"},
		{"OMP_SCHEDULE": "static,0"},
		{"OMP_SCHEDULE": "static,x"},
		{"OMP_NESTED": "maybe"},
		{"OMP_WAIT_POLICY": "spinny"},
		{"GOMP_ATOMIC_EVENTS": "2"},
		{"GOMP_LOOP_EVENTS": "nah"},
	}
	for _, env := range bad {
		if _, err := ConfigFromEnv(Config{}, envLookup(env)); err == nil {
			t.Errorf("env %v accepted", env)
		}
	}
}

func TestParseSchedule(t *testing.T) {
	cases := []struct {
		in    string
		sched Schedule
		chunk int
		ok    bool
	}{
		{"static", ScheduleStatic, 0, true},
		{"STATIC, 4", ScheduleStatic, 4, true},
		{"dynamic,1", ScheduleDynamic, 1, true},
		{"guided , 8", ScheduleGuided, 8, true},
		{"auto", 0, 0, false},
		{"dynamic,", 0, 0, false},
	}
	for _, c := range cases {
		sched, chunk, err := ParseSchedule(c.in)
		if c.ok != (err == nil) {
			t.Errorf("%q: err = %v", c.in, err)
			continue
		}
		if c.ok && (sched != c.sched || chunk != c.chunk) {
			t.Errorf("%q: got (%v, %d), want (%v, %d)", c.in, sched, chunk, c.sched, c.chunk)
		}
	}
}

func TestEnvConfiguredRuntimeRuns(t *testing.T) {
	cfg, err := ConfigFromEnv(Config{}, envLookup(map[string]string{
		"OMP_NUM_THREADS": "3",
		"OMP_SCHEDULE":    "guided,2",
	}))
	if err != nil {
		t.Fatal(err)
	}
	r := New(cfg)
	defer r.Close()
	counts := make([]int32, 100)
	r.Parallel(func(tc *ThreadCtx) {
		tc.ForSched(100, ScheduleRuntime, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				counts[i]++
			}
		})
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
}
