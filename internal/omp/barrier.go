package omp

import (
	"runtime"
	"sync/atomic"
)

// Synchronization-core tuning constants. The barrier topology and the
// waiter policy are picked per team in newTeamBarrier; DESIGN.md
// "Synchronization topology" discusses the choices.
const (
	// cacheLinePad is the assumed cache-line size used to pad
	// per-waiter slots and hot counters against false sharing.
	cacheLinePad = 64

	// barrierFanIn is the arity of the combining tree barrier: thread
	// i's children are threads i*fanIn+1 .. i*fanIn+fanIn. Four keeps
	// the tree depth at 2 for teams up to 20 while spreading arrival
	// traffic over size/4 counters instead of one.
	barrierFanIn = 4

	// defaultTreeThreshold is the team size above which the tree
	// barrier replaces the central one. Small teams fit one cache line
	// of arrival traffic; the tree only pays off once several waiters
	// would otherwise hammer the same line.
	defaultTreeThreshold = 4

	// defaultActiveSpin / defaultPassiveSpin bound the hybrid waiter's
	// spin phase (flag checks before parking) for
	// OMP_WAIT_POLICY=active and =passive. Passive still spins
	// briefly: barriers are usually released within a few microseconds
	// and a park/unpark round trip costs more than the residual spin.
	defaultActiveSpin  = 4096
	defaultPassiveSpin = 256

	// spinYieldMask: the spin phase yields to the scheduler every
	// (mask+1)-th check, so a waiting thread cannot starve the
	// releasing thread off the CPU when the team is oversubscribed.
	spinYieldMask = 3
)

// effectiveSpin resolves the configured spin budget for a team.
func effectiveSpin(cfg Config, size int) int {
	spin := cfg.BarrierSpin
	if spin == 0 {
		if cfg.SpinBarrier {
			spin = defaultActiveSpin
		} else {
			spin = defaultPassiveSpin
		}
	}
	if spin < 0 {
		spin = 0
	}
	return spin
}

// newTeamBarrier picks the barrier implementation for a team: a
// combining tree above the size threshold, otherwise the central
// hybrid spin barrier; both honor the wait policy through the spin
// budget. BarrierSpin < 0 (never spin) selects the central blocking
// (condition-variable) barrier for non-tree teams. With the threshold
// left at its default the tree also requires GOMAXPROCS > 1: the tree
// exists to spread arrival traffic across cache lines, and on a
// single P its extra release hop is pure scheduling latency. combine
// is invoked by the releasing thread once per episode, after every
// thread has arrived and before any is released — the hook pending
// reductions are flushed through.
func newTeamBarrier(size int, cfg Config, combine func()) barrier {
	thr := cfg.TreeBarrierThreshold
	if thr == 0 {
		thr = defaultTreeThreshold
		if runtime.GOMAXPROCS(0) == 1 {
			thr = -1
		}
	}
	if thr > 0 && size > thr {
		return newTreeBarrier(size, effectiveSpin(cfg, size), combine)
	}
	if cfg.BarrierSpin < 0 {
		return newBlockingBarrier(size, combine)
	}
	return newSpinBarrier(size, effectiveSpin(cfg, size), combine)
}

// waitcell is one waiter's park slot: a release-generation flag the
// waiter spins on briefly and a channel it parks on when the spin
// budget runs out. The flag and park state live on the waiter's own
// cache-line-padded slot, so the only cross-thread traffic is the
// releaser's single store-and-wake.
type waitcell struct {
	flag   atomic.Uint32 // last released generation (monotonic)
	parked atomic.Uint32 // nonzero while the waiter may be parked on ch
	ch     chan struct{}
	_      [cacheLinePad - 16]byte
}

func initWaitcells(cells []waitcell) {
	for i := range cells {
		cells[i].ch = make(chan struct{}, 1)
	}
}

// reached reports whether generation gen has been released. Flags are
// monotonic, so the signed difference survives wraparound.
func (w *waitcell) reached(gen uint32) bool {
	return int32(w.flag.Load()-gen) >= 0
}

// wake releases the waiter into generation gen, unparking it if
// needed. Exactly one thread wakes a given cell per episode.
func (w *waitcell) wake(gen uint32) {
	w.flag.Store(gen)
	w.interrupt()
}

// interrupt unparks the waiter without advancing its generation; the
// waiter re-evaluates its condition (used by wake and by cancel). The
// leading load keeps the common no-parked-waiter path free of atomic
// read-modify-writes; it cannot miss a parking waiter, because the
// waiter publishes parked before re-checking the flag and both
// operations are sequentially consistent — if our load sees parked=0,
// the waiter's re-check sees our flag store and it never sleeps.
func (w *waitcell) interrupt() {
	if w.parked.Load() != 0 && w.parked.Swap(0) != 0 {
		select {
		case w.ch <- struct{}{}:
		default:
		}
	}
}

// await blocks until generation gen is released or the barrier is
// cancelled: spin (yielding periodically) for up to spin checks, then
// park. A stale token from a previous episode at worst causes one
// spurious re-check.
func (w *waitcell) await(gen uint32, spin int, cancelled *atomic.Bool) {
	for i := 0; i < spin; i++ {
		if w.reached(gen) || cancelled.Load() {
			return
		}
		if i&spinYieldMask == spinYieldMask {
			runtime.Gosched()
		}
	}
	for !w.reached(gen) && !cancelled.Load() {
		w.parked.Store(1)
		// Re-check after publishing the parked flag: a releaser that
		// stored the flag before seeing us parked will not send a
		// token, so we must not sleep.
		if w.reached(gen) || cancelled.Load() {
			w.parked.Store(0)
			return
		}
		<-w.ch
	}
}
