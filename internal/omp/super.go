package omp

import (
	"fmt"
	"sync/atomic"
	"unsafe"

	"goomp/internal/super"
)

// Hang-supervision glue: every blocking construct in this package
// registers a wait record with the active supervisor (super.Enabled)
// immediately before parking and clears it on wake; lock-shaped
// constructs also report ownership so the watchdog can close wait-for
// cycles. Each site is gated on a single atomic pointer load, so an
// un-supervised run pays one predicted branch per wait and nothing
// else.

// rtSeq numbers runtime instances so supervision labels stay unique
// when several runtimes coexist in one process (one RT per mpi rank in
// the MZ harnesses). Without it, "thread 3" of two runtimes would
// alias in the wait-for graph and could fabricate cycles.
var rtSeq atomic.Uint64

// superWho returns the thread's stable supervision label, computed on
// first use. ThreadCtx is confined to its thread, so the lazy cache
// needs no synchronization; the fmt call only happens on a contended
// wait with supervision enabled.
func (tc *ThreadCtx) superWho() string {
	if tc.slabel == "" {
		tc.slabel = fmt.Sprintf("omp%d thread %d", tc.rt.seq, tc.id)
	}
	return tc.slabel
}

// superWhoOf labels an optional thread context: serial code (nil tc)
// acquires locks too.
func superWhoOf(tc *ThreadCtx) string {
	if tc == nil {
		return "serial"
	}
	return tc.superWho()
}

// lockRes identifies a Lock (user lock, critical-section lock or
// reduction lock — all *Lock underneath) by its address, so Acquired
// at any entry point and Released in Lock.Release agree on the key.
// detail is display-only and excluded from identity.
func lockRes(l *Lock, detail string) super.Resource {
	return super.Resource{Kind: super.ResLock,
		ID: uint64(uintptr(unsafe.Pointer(l))), Detail: detail}
}

func nestedLockRes(nl *NestedLock) super.Resource {
	return super.Resource{Kind: super.ResLock,
		ID: uint64(uintptr(unsafe.Pointer(nl))), Detail: "nested"}
}
