package omp

import (
	"sync"

	"goomp/internal/collector"
)

// Explicit tasks — the OpenMP 3.0 construct the paper's §VI names as
// the next step for the interface ("More work will be needed to extend
// the interface to handle the constructs in the recent OpenMP 3.0
// standard"). A task is deferred work any thread of the team may
// execute; threads drain the team's task pool at barriers and at
// taskwait points, so every task of a region completes by the region's
// closing barrier. The collector extension defines three events:
// task creation (EventTaskCreate, fired by the creating thread) and
// begin/end of task execution (EventThrBeginTask/EventThrEndTask,
// fired by the executing thread).

// task is one deferred unit plus the group its completion signals.
type task struct {
	fn     func(tc *ThreadCtx)
	parent *taskGroup
}

// taskGroup counts outstanding children of one creating context; the
// pool's lock guards it.
type taskGroup struct {
	pending int
}

// taskPool is the per-team task queue. One lock guards the queue and
// every group counter; the condition variable is broadcast on each
// push and each completion, so a taskwait never misses either the
// arrival of stealable work or the completion of its last child.
type taskPool struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []task
}

func (p *taskPool) init() {
	p.cond = sync.NewCond(&p.mu)
}

// Task defers fn as an explicit task. Any thread of the team may run
// it — at a barrier, at a taskwait, or while another taskwait spins.
func (tc *ThreadCtx) Task(fn func(tc *ThreadCtx)) {
	p := &tc.team.tasks
	tc.rt.col.Event(tc.td, collector.EventTaskCreate)
	p.mu.Lock()
	if tc.group == nil {
		tc.group = new(taskGroup)
	}
	tc.group.pending++
	p.queue = append(p.queue, task{fn: fn, parent: tc.group})
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Taskwait blocks until every task created by this context has
// finished. While waiting it executes ready tasks (its own or other
// threads') instead of idling.
func (tc *ThreadCtx) Taskwait() {
	if tc.group == nil {
		return
	}
	p := &tc.team.tasks
	p.mu.Lock()
	for tc.group.pending > 0 {
		if t, ok := p.popLocked(); ok {
			p.mu.Unlock()
			tc.execTask(t)
			p.mu.Lock()
			continue
		}
		p.cond.Wait()
	}
	p.mu.Unlock()
}

func (p *taskPool) popLocked() (task, bool) {
	n := len(p.queue)
	if n == 0 {
		return task{}, false
	}
	t := p.queue[n-1]
	p.queue[n-1] = task{}
	p.queue = p.queue[:n-1]
	return t, true
}

// execTask runs one task (lock not held). The task body gets a fresh
// context so children it creates form its own group, joined by the
// implicit taskwait at task end (the tied-task guarantee that a task's
// children complete before it reports completion).
func (tc *ThreadCtx) execTask(t task) {
	col := tc.rt.col
	col.Event(tc.td, collector.EventThrBeginTask)
	inner := &ThreadCtx{rt: tc.rt, team: tc.team, id: tc.id, td: tc.td,
		level: tc.level, parent: tc.parent}
	func() {
		// A panicking task is recorded like a panicking region body;
		// the completion accounting below must still run or a
		// taskwait would deadlock.
		defer func() {
			if r := recover(); r != nil {
				tc.team.recordPanic(tc.id, r)
			}
		}()
		t.fn(inner)
		if inner.group != nil {
			inner.Taskwait()
		}
	}()
	col.Event(tc.td, collector.EventThrEndTask)
	p := &tc.team.tasks
	p.mu.Lock()
	t.parent.pending--
	p.cond.Broadcast()
	p.mu.Unlock()
}

// drainTasks runs ready tasks until the pool is empty. Barriers call
// it on entry: the last thread to reach the barrier finds every
// remaining task (all other threads are already inside, so nothing new
// can be pushed), which gives the OpenMP guarantee that all tasks of
// the region complete at the barrier.
func (tc *ThreadCtx) drainTasks() {
	p := &tc.team.tasks
	for {
		p.mu.Lock()
		t, ok := p.popLocked()
		p.mu.Unlock()
		if !ok {
			return
		}
		tc.execTask(t)
	}
}
