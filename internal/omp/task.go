package omp

import (
	"runtime"
	"sync"
	"sync/atomic"

	"goomp/internal/collector"
)

// Explicit tasks — the OpenMP 3.0 construct the paper's §VI names as
// the next step for the interface ("More work will be needed to extend
// the interface to handle the constructs in the recent OpenMP 3.0
// standard"). A task is deferred work any thread of the team may
// execute; threads drain the team's task deques at barriers and at
// taskwait points, so every task of a region completes by the region's
// closing barrier.
//
// Scheduling is work-stealing: each team thread owns a Chase-Lev deque
// (push and LIFO pop at the bottom by the owner, FIFO single-task
// steals from the top by thieves), replacing the earlier single-lock
// per-team pool whose one mutex serialized every push, pop and
// completion under fine-grained task loads. The collector extension
// defines four events: task creation (EventTaskCreate, fired by the
// creating thread), begin/end of task execution
// (EventThrBeginTask/EventThrEndTask, fired by the executing thread),
// and task migration (EventTaskSteal, fired by the thief with the
// victim's thread number in its descriptor's steal-victim slot).

// task is one deferred unit plus the group its completion signals.
// Nodes are pooled: a node is released back as soon as its exclusive
// owner (the popping or stealing thread) has copied the fields out, so
// steady-state task submission allocates nothing.
type task struct {
	fn     func(tc *ThreadCtx)
	parent *taskGroup
}

// taskGroup counts outstanding children of one creating context.
type taskGroup struct {
	pending atomic.Int32
}

var (
	taskNodePool  = sync.Pool{New: func() any { return new(task) }}
	taskGroupPool = sync.Pool{New: func() any { return new(taskGroup) }}
	taskCtxPool   = sync.Pool{New: func() any { return new(ThreadCtx) }}
)

// initTaskRing is the initial capacity (a power of two) of a task
// deque's circular buffer; the ring doubles when the owner outruns it
// and, like the deque slices themselves, is recycled across regions.
const initTaskRing = 32

// taskRing is the growable circular buffer of a Chase-Lev deque. Slots
// are atomic pointers because a thief reads its candidate slot before
// the top CAS that makes the claim; a reader that loses the CAS
// discards what it read. Old rings stay valid after a grow (entries
// are copied, never moved), so a thief holding a stale ring pointer
// still reads the right task for any index its CAS can win.
type taskRing struct {
	mask  int64
	slots []atomic.Pointer[task]
}

func newTaskRing(n int64) *taskRing {
	return &taskRing{mask: n - 1, slots: make([]atomic.Pointer[task], n)}
}

func (r *taskRing) at(i int64) *atomic.Pointer[task] { return &r.slots[i&r.mask] }

// taskDeque is one thread's work-stealing task deque (Chase-Lev): the
// owner pushes and pops at the bottom, thieves advance top by CAS. The
// three hot words sit on separate cache lines so an owner pushing does
// not collide with thieves scanning top.
type taskDeque struct {
	bottom atomic.Int64
	_      [cacheLinePad - 8]byte
	top    atomic.Int64
	_      [cacheLinePad - 8]byte
	ring   atomic.Pointer[taskRing]
	_      [cacheLinePad - 8]byte
}

// push appends a task at the bottom. Owner-only.
func (d *taskDeque) push(nd *task) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if b-t > r.mask {
		r = d.grow(r, b, t)
	}
	r.at(b).Store(nd)
	d.bottom.Store(b + 1)
}

// grow doubles the ring, copying the live window. Owner-only; the old
// ring is left intact for concurrent thieves holding it.
func (d *taskDeque) grow(old *taskRing, b, t int64) *taskRing {
	nr := newTaskRing(2 * (old.mask + 1))
	for i := t; i < b; i++ {
		nr.at(i).Store(old.at(i).Load())
	}
	d.ring.Store(nr)
	return nr
}

// pop takes the most recently pushed task (LIFO). Owner-only; the
// last-element race against a thief is resolved by a CAS on top.
func (d *taskDeque) pop() *task {
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore bottom.
		d.bottom.Store(b + 1)
		return nil
	}
	nd := r.at(b).Load()
	if t == b {
		// Single element left: race thieves for it.
		if !d.top.CompareAndSwap(t, t+1) {
			nd = nil
		}
		d.bottom.Store(b + 1)
	}
	return nd
}

// steal takes the oldest task (FIFO). Any thread. Returns the task (nil
// if none was taken) and whether the caller should retry: false means
// the deque was seen empty.
func (d *taskDeque) steal() (*task, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil, false
	}
	r := d.ring.Load()
	nd := r.at(t).Load()
	if !d.top.CompareAndSwap(t, t+1) {
		// Lost to the owner or another thief; nd is discarded unread.
		return nil, true
	}
	return nd, true
}

// taskScheduler is the per-team task system: one deque per thread.
// The deque slices (and the rings hanging off them) are recycled
// across regions through the runtime's free list, so steady-state
// regions create and run tasks without allocating.
type taskScheduler struct {
	deq []taskDeque
}

// Task defers fn as an explicit task. Any thread of the team may run
// it — at a barrier, at a taskwait, or while another taskwait spins.
// The task is pushed on the creating thread's own deque; idle
// teammates steal from the top.
func (tc *ThreadCtx) Task(fn func(tc *ThreadCtx)) {
	tc.rt.col.Event(tc.td, collector.EventTaskCreate)
	if tc.group == nil {
		tc.group = taskGroupPool.Get().(*taskGroup)
	}
	tc.group.pending.Add(1)
	nd := taskNodePool.Get().(*task)
	nd.fn, nd.parent = fn, tc.group
	tc.team.tasks.deq[tc.id].push(nd)
}

// Taskwait blocks until every task created by this context has
// finished. While waiting it executes ready tasks (its own or stolen)
// instead of idling.
func (tc *ThreadCtx) Taskwait() {
	g := tc.group
	if g == nil {
		return
	}
	for g.pending.Load() > 0 {
		if !tc.runOneTask() {
			runtime.Gosched()
		}
	}
}

// runOneTask executes one ready task: the newest from this thread's own
// deque, or failing that the oldest stolen from a teammate. Returns
// false when every deque was seen empty.
func (tc *ThreadCtx) runOneTask() bool {
	sch := &tc.team.tasks
	if nd := sch.deq[tc.id].pop(); nd != nil {
		tc.execTask(nd)
		return true
	}
	p := tc.team.size
	for off := 1; off < p; off++ {
		v := tc.id + off
		if v >= p {
			v -= p
		}
		for {
			nd, retry := sch.deq[v].steal()
			if nd != nil {
				tc.noteSteal(collector.EventTaskSteal, v)
				tc.execTask(nd)
				return true
			}
			if !retry {
				break
			}
		}
	}
	return false
}

// execTask runs one task whose node the caller exclusively owns. The
// task body gets a (pooled) fresh context so children it creates form
// its own group, joined by the implicit taskwait at task end (the
// tied-task guarantee that a task's children complete before it
// reports completion). The context must not be retained past the task
// body, matching the scope of OpenMP's implicit task data environment.
func (tc *ThreadCtx) execTask(nd *task) {
	fn, parent := nd.fn, nd.parent
	nd.fn, nd.parent = nil, nil
	taskNodePool.Put(nd)

	col := tc.rt.col
	col.Event(tc.td, collector.EventThrBeginTask)
	inner := taskCtxPool.Get().(*ThreadCtx)
	*inner = ThreadCtx{rt: tc.rt, team: tc.team, id: tc.id, td: tc.td,
		level: tc.level, parent: tc.parent}
	func() {
		// A panicking task is recorded like a panicking region body;
		// the completion accounting below must still run or a
		// taskwait would deadlock.
		defer func() {
			if r := recover(); r != nil {
				tc.team.recordPanic(tc.id, r)
			}
		}()
		fn(inner)
		if inner.group != nil {
			inner.Taskwait()
		}
	}()
	col.Event(tc.td, collector.EventThrEndTask)
	if g := inner.group; g != nil && g.pending.Load() == 0 {
		taskGroupPool.Put(g)
	}
	*inner = ThreadCtx{}
	taskCtxPool.Put(inner)
	parent.pending.Add(-1)
}

// drainTasks runs ready tasks until every deque of the team is seen
// empty. Barriers call it on entry: once a thread is inside the
// barrier its deque can only shrink (owners alone push), so the last
// thread to arrive finds every remaining task — the OpenMP guarantee
// that all tasks of the region complete at the barrier.
func (tc *ThreadCtx) drainTasks() {
	for tc.runOneTask() {
	}
}

// Taskloop distributes iterations [0, n) as explicit tasks of about
// grain iterations each (grain <= 0 selects n/(8*teamsize), at least
// 1) and waits for all of them — OpenMP's taskloop construct with its
// implicit taskgroup. Ranges are split by recursive halving: the
// splitting itself parallelizes, and each final task invokes body with
// one contiguous [lo, hi) range. Typically called from within Single.
func (tc *ThreadCtx) Taskloop(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = n / (8 * tc.team.size)
		if grain < 1 {
			grain = 1
		}
	}
	// The construct's implicit taskgroup: split tasks join a fresh
	// group so the closing Taskwait does not wait on (or release
	// early because of) unrelated siblings.
	prev := tc.group
	tc.group = nil
	tc.taskloopSplit(0, n, grain, body)
	tc.Taskwait()
	if g := tc.group; g != nil && g.pending.Load() == 0 {
		taskGroupPool.Put(g)
	}
	tc.group = prev
}

func (tc *ThreadCtx) taskloopSplit(lo, hi, grain int, body func(lo, hi int)) {
	for hi-lo > grain {
		mid := lo + (hi-lo)/2
		mlo, mhi := mid, hi
		tc.Task(func(itc *ThreadCtx) {
			itc.taskloopSplit(mlo, mhi, grain, body)
		})
		hi = mid
	}
	body(lo, hi)
}
