package omp

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestScheduleBoundaryFixtures pins the chunk boundaries produced by
// static, dynamic, and guided schedules against fixtures generated from
// the pre-work-stealing scheduler (testdata/sched_fixtures.txt). The
// boundary *set* for each (schedule, n, chunk, threads) combination must
// stay bit-identical: work stealing may move chunks between threads but
// must never change how the iteration space is cut.
//
// Fixture line format: FIX|sched|n|chunk|p|lo:hi,lo:hi,...
func TestScheduleBoundaryFixtures(t *testing.T) {
	f, err := os.Open("testdata/sched_fixtures.txt")
	if err != nil {
		t.Fatalf("open fixtures: %v", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || !strings.HasPrefix(line, "FIX|") {
			continue
		}
		lines++
		parts := strings.SplitN(line, "|", 6)
		if len(parts) != 6 {
			t.Fatalf("bad fixture line: %q", line)
		}
		sched := Schedule(atoi(t, parts[1]))
		n := atoi(t, parts[2])
		chunk := atoi(t, parts[3])
		p := atoi(t, parts[4])
		want := parts[5]

		t.Run(fmt.Sprintf("%s/n%d/c%d/p%d", sched, n, chunk, p), func(t *testing.T) {
			got := boundarySet(sched, n, chunk, p)
			if got != want {
				t.Fatalf("boundary set changed\n got: %s\nwant: %s", got, want)
			}
		})
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan fixtures: %v", err)
	}
	if lines != 120 {
		t.Fatalf("expected 120 fixture lines, read %d", lines)
	}
}

func boundarySet(sched Schedule, n, chunk, p int) string {
	r := New(Config{NumThreads: p})
	defer r.Close()
	var mu sync.Mutex
	var got [][2]int
	r.Parallel(func(tc *ThreadCtx) {
		tc.ForSched(n, sched, chunk, func(lo, hi int) {
			mu.Lock()
			got = append(got, [2]int{lo, hi})
			mu.Unlock()
		})
	})
	sort.Slice(got, func(i, j int) bool { return got[i][0] < got[j][0] })
	var b strings.Builder
	for _, bd := range got {
		fmt.Fprintf(&b, "%d:%d,", bd[0], bd[1])
	}
	return b.String()
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("bad int %q: %v", s, err)
	}
	return v
}
