package omp

import "sync"

// Threadprivate is per-thread storage that persists across parallel
// regions, the runtime support behind OpenMP's threadprivate
// directive: each OpenMP thread (by global thread number) owns one
// slot of T, initialized on first touch, surviving between regions as
// long as the runtime's thread pool does.
type Threadprivate[T any] struct {
	init func() T

	mu    sync.RWMutex
	slots map[int]*T
}

// NewThreadprivate returns threadprivate storage whose slots are
// initialized by init on first access (nil means zero value).
func NewThreadprivate[T any](init func() T) *Threadprivate[T] {
	return &Threadprivate[T]{init: init, slots: make(map[int]*T)}
}

// Get returns the calling thread's slot, creating it on first touch.
func (tp *Threadprivate[T]) Get(tc *ThreadCtx) *T {
	id := tc.ThreadNum()
	tp.mu.RLock()
	p := tp.slots[id]
	tp.mu.RUnlock()
	if p != nil {
		return p
	}
	tp.mu.Lock()
	defer tp.mu.Unlock()
	if p = tp.slots[id]; p != nil {
		return p
	}
	var v T
	if tp.init != nil {
		v = tp.init()
	}
	tp.slots[id] = &v
	return tp.slots[id]
}

// CopyIn sets every existing slot (and the master's) to a copy of v —
// the copyin clause: broadcast the master's value to the team at
// region entry. Call it from one thread.
func (tp *Threadprivate[T]) CopyIn(team int, v T) {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	for id := 0; id < team; id++ {
		val := v
		tp.slots[id] = &val
	}
}

// Range visits every initialized slot in unspecified order; useful for
// post-region aggregation of per-thread partials.
func (tp *Threadprivate[T]) Range(f func(thread int, v *T)) {
	tp.mu.RLock()
	defer tp.mu.RUnlock()
	for id, p := range tp.slots {
		f(id, p)
	}
}
