package omp

import (
	"sync/atomic"
	"testing"
)

func TestThreadprivatePersistsAcrossRegions(t *testing.T) {
	r := newRT(t, Config{NumThreads: 4})
	tp := NewThreadprivate[int](nil)
	for round := 1; round <= 3; round++ {
		r.Parallel(func(tc *ThreadCtx) {
			*tp.Get(tc)++
		})
	}
	seen := 0
	tp.Range(func(thread int, v *int) {
		seen++
		if *v != 3 {
			t.Errorf("thread %d slot = %d, want 3 (must persist across regions)", thread, *v)
		}
	})
	if seen != 4 {
		t.Errorf("slots = %d, want 4", seen)
	}
}

func TestThreadprivateInitializer(t *testing.T) {
	r := newRT(t, Config{NumThreads: 3})
	var inits atomic.Int32
	tp := NewThreadprivate[[]float64](func() []float64 {
		inits.Add(1)
		return make([]float64, 8)
	})
	r.Parallel(func(tc *ThreadCtx) {
		buf := tp.Get(tc)
		(*buf)[0] = float64(tc.ThreadNum())
		// Second Get must return the same slot, not re-initialize.
		if &(*tp.Get(tc))[0] != &(*buf)[0] {
			t.Error("Get returned a different slot")
		}
	})
	if inits.Load() != 3 {
		t.Errorf("initializer ran %d times, want 3", inits.Load())
	}
}

func TestThreadprivateCopyIn(t *testing.T) {
	r := newRT(t, Config{NumThreads: 3})
	tp := NewThreadprivate[int](nil)
	tp.CopyIn(3, 41)
	var bad atomic.Int32
	r.Parallel(func(tc *ThreadCtx) {
		if *tp.Get(tc) != 41 {
			bad.Add(1)
		}
		*tp.Get(tc)++
	})
	if bad.Load() != 0 {
		t.Errorf("%d threads missed the copyin value", bad.Load())
	}
	tp.Range(func(thread int, v *int) {
		if *v != 42 {
			t.Errorf("thread %d = %d, want 42", thread, *v)
		}
	})
}
