package omp

import (
	"sync/atomic"
)

// spinBarrier is the central barrier for the active wait policy
// (OMP_WAIT_POLICY=active) at small team sizes: one arrival counter,
// per-waiter cache-line-padded release flags, and the hybrid
// bounded-spin-then-park waiter. It replaces the earlier unbounded
// runtime.Gosched() loop: a waiter that exhausts its spin budget parks
// on its own cell, so an oversubscribed team (threads > GOMAXPROCS)
// makes progress without burning whole scheduler quanta, while a team
// on dedicated cores is released within the spin phase and never pays
// a park/unpark round trip.
type spinBarrier struct {
	size    int
	spin    int
	combine func()

	count atomic.Int64 // arrivals this episode (hot: own line)
	_     [cacheLinePad - 8]byte

	epoch     atomic.Uint32 // completed episodes
	cancelled atomic.Bool
	_         [cacheLinePad - 5]byte

	cells []waitcell // per-waiter padded release flags
}

func newSpinBarrier(size, spin int, combine func()) *spinBarrier {
	b := &spinBarrier{size: size, spin: spin, combine: combine,
		cells: make([]waitcell, size)}
	initWaitcells(b.cells)
	return b
}

func (b *spinBarrier) await(tid int) {
	if b.cancelled.Load() {
		return
	}
	// The episode this arrival belongs to: epoch cannot advance past
	// the current episode until this thread's arrival is counted, so
	// the pre-arrival read is stable.
	gen := b.epoch.Load() + 1
	if b.count.Add(1) == int64(b.size) {
		// Last arriver: the team is quiescent — run the combine hook,
		// re-arm the counter, publish the episode and release every
		// waiter through its own cell.
		if !b.cancelled.Load() && b.combine != nil {
			b.combine()
		}
		b.count.Store(0)
		b.epoch.Store(gen)
		for i := range b.cells {
			if i != tid {
				b.cells[i].wake(gen)
			}
		}
		return
	}
	b.cells[tid].await(gen, b.spin, &b.cancelled)
}

func (b *spinBarrier) cancel() {
	b.cancelled.Store(true)
	for i := range b.cells {
		b.cells[i].interrupt()
	}
}
