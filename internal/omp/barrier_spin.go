package omp

import (
	"runtime"
	"sync/atomic"
)

// spinBarrier is a central sense-reversing barrier whose waiters spin
// (yielding to the scheduler) instead of blocking. On dedicated cores
// this trades CPU for latency; oversubscribed it wastes time, which is
// exactly what the ablation benchmark demonstrates.
type spinBarrier struct {
	size      int64
	count     atomic.Int64
	sense     atomic.Bool
	cancelled atomic.Bool
}

func newSpinBarrier(size int) *spinBarrier {
	return &spinBarrier{size: int64(size)}
}

func (b *spinBarrier) await() {
	if b.cancelled.Load() {
		return
	}
	sense := b.sense.Load()
	if b.count.Add(1) == b.size {
		b.count.Store(0)
		b.sense.Store(!sense)
		return
	}
	for b.sense.Load() == sense && !b.cancelled.Load() {
		// Gosched rather than a pure spin: with GOMAXPROCS below the
		// team size a pure spin could live-lock the releasing thread
		// off the CPU entirely.
		runtime.Gosched()
	}
}

func (b *spinBarrier) cancel() { b.cancelled.Store(true) }
