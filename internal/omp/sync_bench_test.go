package omp

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// EPCC-style synchronization overhead benchmarks: the acceptance
// numbers for the scalable synchronization core (tree barrier,
// combining reductions, batched loop scheduling). Before/after values
// at 8 threads are recorded in EXPERIMENTS.md and BENCH_sync.json.

var syncBenchTeams = []int{2, 4, 8}

// BenchmarkBarrier measures the per-episode cost of the explicit
// barrier construct, the EPCC BARRIER directive: every thread of the
// team enters b.N barriers back to back.
func BenchmarkBarrier(b *testing.B) {
	for _, n := range syncBenchTeams {
		n := n
		b.Run(fmt.Sprintf("threads-%d", n), func(b *testing.B) {
			rt := New(Config{NumThreads: n})
			defer rt.Close()
			rt.Parallel(func(tc *ThreadCtx) {}) // warm the pool
			b.ResetTimer()
			rt.Parallel(func(tc *ThreadCtx) {
				for i := 0; i < b.N; i++ {
					tc.Barrier()
				}
			})
		})
	}
}

// BenchmarkBarrierSpin is BenchmarkBarrier under the active wait
// policy (OMP_WAIT_POLICY=active).
func BenchmarkBarrierSpin(b *testing.B) {
	for _, n := range syncBenchTeams {
		n := n
		b.Run(fmt.Sprintf("threads-%d", n), func(b *testing.B) {
			rt := New(Config{NumThreads: n, SpinBarrier: true})
			defer rt.Close()
			rt.Parallel(func(tc *ThreadCtx) {})
			b.ResetTimer()
			rt.Parallel(func(tc *ThreadCtx) {
				for i := 0; i < b.N; i++ {
					tc.Barrier()
				}
			})
		})
	}
}

// BenchmarkReduction measures the EPCC REDUCTION directive: each
// thread contributes one value per iteration to a shared sum.
func BenchmarkReduction(b *testing.B) {
	for _, n := range syncBenchTeams {
		n := n
		b.Run(fmt.Sprintf("threads-%d", n), func(b *testing.B) {
			rt := New(Config{NumThreads: n})
			defer rt.Close()
			var sum float64
			rt.Parallel(func(tc *ThreadCtx) {}) // warm the pool
			b.ResetTimer()
			rt.Parallel(func(tc *ThreadCtx) {
				for i := 0; i < b.N; i++ {
					tc.ReduceFloat64(&sum, 1)
				}
			})
			b.StopTimer()
			if want := float64(n) * float64(b.N); sum != want {
				b.Fatalf("reduction sum = %g, want %g", sum, want)
			}
		})
	}
}

// BenchmarkDynamicFor measures a dynamically scheduled worksharing
// loop (the EPCC DYNAMIC schedbench point): 1024 iterations, chunk 4,
// trivial body, including the construct's closing barrier.
func BenchmarkDynamicFor(b *testing.B) {
	const n, chunk = 1024, 4
	for _, p := range syncBenchTeams {
		p := p
		b.Run(fmt.Sprintf("threads-%d", p), func(b *testing.B) {
			rt := New(Config{NumThreads: p})
			defer rt.Close()
			var sink atomic.Int64
			rt.Parallel(func(tc *ThreadCtx) {}) // warm the pool
			b.ResetTimer()
			rt.Parallel(func(tc *ThreadCtx) {
				local := 0
				for i := 0; i < b.N; i++ {
					tc.ForSched(n, ScheduleDynamic, chunk, func(lo, hi int) {
						local += hi - lo
					})
				}
				sink.Add(int64(local))
			})
			b.StopTimer()
			if got, want := sink.Load(), int64(n)*int64(b.N); got != want {
				b.Fatalf("dynamic loop covered %d iterations, want %d", got, want)
			}
		})
	}
}

// BenchmarkGuidedFor is the guided-schedule companion of
// BenchmarkDynamicFor.
func BenchmarkGuidedFor(b *testing.B) {
	const n, chunk = 1024, 4
	for _, p := range syncBenchTeams {
		p := p
		b.Run(fmt.Sprintf("threads-%d", p), func(b *testing.B) {
			rt := New(Config{NumThreads: p})
			defer rt.Close()
			var sink atomic.Int64
			rt.Parallel(func(tc *ThreadCtx) {})
			b.ResetTimer()
			rt.Parallel(func(tc *ThreadCtx) {
				local := 0
				for i := 0; i < b.N; i++ {
					tc.ForSched(n, ScheduleGuided, chunk, func(lo, hi int) {
						local += hi - lo
					})
				}
				sink.Add(int64(local))
			})
			b.StopTimer()
			if got, want := sink.Load(), int64(n)*int64(b.N); got != want {
				b.Fatalf("guided loop covered %d iterations, want %d", got, want)
			}
		})
	}
}

// --- False-sharing microbenchmark (satellite: padded hot atomics) ---

// sharedCounters packs two hot atomics the way the pre-padding
// loopDesc did: updates to one invalidate the cache line holding the
// other.
type sharedCounters struct {
	a atomic.Int64
	b atomic.Int64
}

// paddedCounters separates the same two atomics by a cache line, the
// layout the padded loopDesc uses for next and arrived.
type paddedCounters struct {
	a atomic.Int64
	_ [56]byte
	b atomic.Int64
	_ [56]byte
}

// BenchmarkFalseSharing hammers two atomics from two goroutine groups,
// shared-line vs padded: the delta is the false-sharing cost the
// loopDesc padding removes. On a single-CPU host the delta is small
// (no cross-core invalidations); the layout still matters on real
// multi-core hosts.
func BenchmarkFalseSharing(b *testing.B) {
	const perOp = 64 // atomic increments per pb.Next
	run := func(b *testing.B, a1, a2 *atomic.Int64) {
		var tid atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			target := a1
			if tid.Add(1)%2 == 0 {
				target = a2
			}
			for pb.Next() {
				for i := 0; i < perOp; i++ {
					target.Add(1)
				}
			}
		})
	}
	b.Run("shared-line", func(b *testing.B) {
		var c sharedCounters
		run(b, &c.a, &c.b)
	})
	b.Run("padded", func(b *testing.B) {
		var c paddedCounters
		run(b, &c.a, &c.b)
	})
}

// BenchmarkLoopDescriptor measures the per-construct descriptor cost:
// back-to-back nowait worksharing constructs, which on the map-based
// path paid a team mutex plus a descriptor allocation per construct
// and on the ring path reuse preallocated padded slots.
func BenchmarkLoopDescriptor(b *testing.B) {
	rt := New(Config{NumThreads: 4})
	defer rt.Close()
	rt.Parallel(func(tc *ThreadCtx) {})
	b.ResetTimer()
	rt.Parallel(func(tc *ThreadCtx) {
		for i := 0; i < b.N; i++ {
			tc.ForSchedNoWait(4, ScheduleDynamic, 1, func(lo, hi int) {})
		}
	})
}
