package omp

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"goomp/internal/collector"
)

func TestLockContendedAcquirePath(t *testing.T) {
	// Deterministic contention: thread 0 holds the lock across a
	// barrier, so every other thread's Acquire takes the wait path.
	r := newRT(t, Config{NumThreads: 4})
	var l Lock
	var waits atomic.Int64
	r.Parallel(func(tc *ThreadCtx) {
		if tc.ThreadNum() == 0 {
			l.Acquire(tc)
			tc.Barrier()
			time.Sleep(2 * time.Millisecond)
			l.Release()
		} else {
			tc.Barrier()
			l.Acquire(tc)
			waits.Add(1)
			l.Release()
		}
	})
	if waits.Load() != 3 {
		t.Errorf("%d threads acquired after contention, want 3", waits.Load())
	}
	for id := int32(1); id < 4; id++ {
		ti := r.Collector().Thread(id)
		if ti.WaitID(collector.WaitLock) != 1 {
			t.Errorf("thread %d lock wait ID = %d, want 1", id, ti.WaitID(collector.WaitLock))
		}
	}
}

func TestNestedLockContendedAcquirePath(t *testing.T) {
	r := newRT(t, Config{NumThreads: 3})
	var nl NestedLock
	var order []int
	var mu Lock
	r.Parallel(func(tc *ThreadCtx) {
		if tc.ThreadNum() == 0 {
			nl.Acquire(tc)
			tc.Barrier()
			time.Sleep(2 * time.Millisecond)
			nl.Release()
		} else {
			tc.Barrier()
			nl.Acquire(tc) // contended path with wait tracking
			mu.Acquire(tc)
			order = append(order, tc.ThreadNum())
			mu.Release()
			nl.Release()
		}
	})
	if len(order) != 2 {
		t.Errorf("%d contended acquisitions, want 2", len(order))
	}
}

func TestNilContextContendedLock(t *testing.T) {
	// A nil ThreadCtx (serial caller) must block without panicking on
	// a contended lock.
	var l Lock
	l.Acquire(nil)
	done := make(chan struct{})
	go func() {
		l.Acquire(nil) // contended, nil context branch
		l.Release()
		close(done)
	}()
	time.Sleep(time.Millisecond)
	l.Release()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("nil-context acquire never completed")
	}
}

func TestAtomicWaitHelpers(t *testing.T) {
	r := newRT(t, Config{NumThreads: 1, AtomicEvents: true})
	q := r.Collector().NewQueue()
	collector.Control(q, collector.ReqStart)
	var begin, end atomic.Int64
	h := r.Collector().NewCallbackHandle(func(e collector.Event, ti *collector.ThreadInfo) {
		switch e {
		case collector.EventThrBeginAtwt:
			begin.Add(1)
			if ti.State() != collector.StateAtomicWait {
				t.Errorf("state during atomic wait = %v", ti.State())
			}
		case collector.EventThrEndAtwt:
			end.Add(1)
		}
	})
	collector.Register(q, collector.EventThrBeginAtwt, h)
	collector.Register(q, collector.EventThrEndAtwt, h)
	r.Parallel(func(tc *ThreadCtx) {
		// Drive the wait hooks directly: the contention path is
		// scheduler-dependent, but the hooks must behave identically
		// however they are reached.
		tc.atomicWaitBegin()
		tc.atomicWaitEnd()
	})
	if begin.Load() != 1 || end.Load() != 1 {
		t.Errorf("atomic wait events = %d/%d, want 1/1", begin.Load(), end.Load())
	}
	if ti := r.Collector().Thread(0); ti != nil {
		// wait ID advanced exactly once (master parallel descriptor).
	}
	_, mp := r.MasterDescriptors()
	if mp.WaitID(collector.WaitAtomic) != 1 {
		t.Errorf("atomic wait ID = %d, want 1", mp.WaitID(collector.WaitAtomic))
	}
}

func TestMasterDescriptors(t *testing.T) {
	r := newRT(t, Config{NumThreads: 2})
	serial, parallel := r.MasterDescriptors()
	if serial == nil || parallel == nil || serial == parallel {
		t.Fatal("master must have two distinct descriptors")
	}
	if serial.ID != 0 || parallel.ID != 0 {
		t.Error("both master descriptors must carry thread number 0")
	}
	r.Parallel(func(tc *ThreadCtx) {
		tc.Barrier()
	})
	if parallel.WaitID(collector.WaitBarrier) == 0 {
		t.Error("parallel-mode descriptor did not accumulate barrier waits")
	}
}

func TestRTString(t *testing.T) {
	r := newRT(t, Config{NumThreads: 5, Nested: true})
	s := r.String()
	if !strings.Contains(s, "5") || !strings.Contains(s, "true") {
		t.Errorf("String() = %q", s)
	}
}

func TestParseBoolForms(t *testing.T) {
	for _, v := range []string{"true", "1", "yes", "on", "TRUE", " On "} {
		if b, err := parseBool(v); err != nil || !b {
			t.Errorf("parseBool(%q) = %v, %v", v, b, err)
		}
	}
	for _, v := range []string{"false", "0", "no", "off", "False"} {
		if b, err := parseBool(v); err != nil || b {
			t.Errorf("parseBool(%q) = %v, %v", v, b, err)
		}
	}
	if _, err := parseBool("sometimes"); err == nil {
		t.Error("bad boolean accepted")
	}
}

func TestForZeroIterations(t *testing.T) {
	r := newRT(t, Config{NumThreads: 3})
	ran := false
	r.Parallel(func(tc *ThreadCtx) {
		tc.For(0, func(int) { ran = true })
		tc.ForSched(0, ScheduleDynamic, 2, func(lo, hi int) { ran = true })
		tc.ForSched(0, ScheduleGuided, 2, func(lo, hi int) { ran = true })
	})
	if ran {
		t.Error("zero-iteration loop ran a body")
	}
}

func TestSectionsFewerThanThreads(t *testing.T) {
	r := newRT(t, Config{NumThreads: 4})
	var ran atomic.Int32
	r.Parallel(func(tc *ThreadCtx) {
		tc.Sections(func() { ran.Add(1) })
	})
	if ran.Load() != 1 {
		t.Errorf("single section ran %d times", ran.Load())
	}
}

func TestUnknownSchedulePanics(t *testing.T) {
	r := newRT(t, Config{NumThreads: 1})
	r.Parallel(func(tc *ThreadCtx) {
		defer func() {
			if recover() == nil {
				t.Error("unknown schedule did not panic")
			}
		}()
		tc.ForSchedNoWait(4, Schedule(99), 1, func(lo, hi int) {})
	})
}

func TestParallelOnClosedRuntimePanics(t *testing.T) {
	r := New(Config{NumThreads: 2})
	r.Close()
	defer func() {
		if recover() == nil {
			t.Error("parallel region on closed runtime did not panic")
		}
	}()
	r.ParallelN(8, func(tc *ThreadCtx) {})
}

func TestOrderedSingleThread(t *testing.T) {
	r := newRT(t, Config{NumThreads: 1})
	var order []int
	r.Parallel(func(tc *ThreadCtx) {
		tc.ForOrdered(5, func(i int, ord *Ordered) {
			ord.Do(func() { order = append(order, i) })
		})
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
}
