package omp

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for the scalable synchronization core: guided chunk sequences,
// oversubscribed teams on both barrier topologies, and tree-barrier
// cancellation.

// TestGuidedChunkSequence pins the exact chunk sequence a
// single-threaded guided loop hands out: each claim takes
// remaining/(2p) iterations, clamped below by the chunk size, so the
// sequence is deterministic for p=1. Regressions in the claim
// arithmetic (batching must never change guided boundaries) show up as
// a different table.
func TestGuidedChunkSequence(t *testing.T) {
	type span struct{ lo, hi int }
	cases := []struct {
		name  string
		n     int
		chunk int
		want  []span
	}{
		{
			// Halving sequence down to single iterations.
			name: "n10-chunk1", n: 10, chunk: 1,
			want: []span{{0, 5}, {5, 7}, {7, 8}, {8, 9}, {9, 10}},
		},
		{
			// A chunk larger than the whole loop: one clamped claim.
			name: "chunk-exceeds-n", n: 5, chunk: 8,
			want: []span{{0, 5}},
		},
		{
			// Min-chunk clamping: once remaining/(2p) drops below the
			// chunk size, claims stay at chunk granularity (the final
			// claim is truncated at n).
			name: "n16-chunk3-clamp", n: 16, chunk: 3,
			want: []span{{0, 8}, {8, 12}, {12, 15}, {15, 16}},
		},
		{
			// Zero iterations: no chunks at all.
			name: "empty", n: 0, chunk: 4,
			want: nil,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := newRT(t, Config{NumThreads: 1})
			var got []span
			r.Parallel(func(tc *ThreadCtx) {
				tc.ForSched(c.n, ScheduleGuided, c.chunk, func(lo, hi int) {
					got = append(got, span{lo, hi})
				})
			})
			if len(got) != len(c.want) {
				t.Fatalf("chunk sequence %v, want %v", got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Fatalf("chunk %d = %v, want %v (full: %v)", i, got[i], c.want[i], got)
				}
			}
		})
	}
}

// runOversubscribed runs a team much larger than GOMAXPROCS through a
// stretch of barriers under the active (spinning) wait policy and
// fails if it does not finish before the deadline: the hybrid waiter
// must park rather than spin forever, or descheduled threads starve
// the releasing thread.
func runOversubscribed(t *testing.T, cfg Config) {
	t.Helper()
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	const threads, rounds = 16, 50
	cfg.NumThreads = threads
	r := New(cfg)
	defer r.Close()
	var counter atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Parallel(func(tc *ThreadCtx) {
			for i := 0; i < rounds; i++ {
				counter.Add(1)
				tc.Barrier()
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("oversubscribed team did not finish: barrier waiters starved the releaser")
	}
	if got := counter.Load(); got != threads*rounds {
		t.Errorf("counter = %d, want %d", got, threads*rounds)
	}
}

func TestOversubscribedCentralBarrier(t *testing.T) {
	// TreeBarrierThreshold < 0 forces the central barrier at any size.
	runOversubscribed(t, Config{SpinBarrier: true, TreeBarrierThreshold: -1})
}

func TestOversubscribedTreeBarrier(t *testing.T) {
	// Threshold 1 forces the tree for the 16-thread team.
	runOversubscribed(t, Config{SpinBarrier: true, TreeBarrierThreshold: 1})
}

// TestTreeBarrierPhases is the cross-phase visibility test on the tree
// topology: after every barrier each thread must observe the complete
// previous phase.
func TestTreeBarrierPhases(t *testing.T) {
	r := newRT(t, Config{NumThreads: 8, TreeBarrierThreshold: 1})
	const phases = 25
	var counter atomic.Int64
	fail := make(chan string, 8)
	r.Parallel(func(tc *ThreadCtx) {
		for p := 1; p <= phases; p++ {
			counter.Add(1)
			tc.Barrier()
			if got := counter.Load(); got != int64(8*p) {
				select {
				case fail <- "phase tear":
				default:
				}
			}
			tc.Barrier()
		}
	})
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}

// TestTreeBarrierCancelReleasesPartialArrival parks part of a team in
// a tree barrier — internal nodes waiting on children and leaves
// waiting for release — cancels it, and requires every waiter back
// exactly once, with later arrivals passing straight through.
func TestTreeBarrierCancelReleasesPartialArrival(t *testing.T) {
	const size = 8
	b := newTreeBarrier(size, 16, nil)
	arrivers := []int{1, 2, 3, 4, 5} // root 0 and leaves 6, 7 never arrive
	var returned atomic.Int32
	var wg sync.WaitGroup
	for _, tid := range arrivers {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			b.await(tid)
			returned.Add(1)
		}(tid)
	}
	// Give the waiters time to arrive and park; the barrier cannot
	// complete with three threads missing.
	time.Sleep(50 * time.Millisecond)
	if got := returned.Load(); got != 0 {
		t.Fatalf("%d waiters returned before cancel with the team incomplete", got)
	}
	b.cancel()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("cancel released %d of %d waiters", returned.Load(), len(arrivers))
	}
	if got := returned.Load(); got != int32(len(arrivers)) {
		t.Fatalf("%d waiters returned, want %d", got, len(arrivers))
	}
	// A cancelled barrier never blocks again: the threads that had not
	// arrived pass straight through.
	for _, tid := range []int{0, 6, 7} {
		c := make(chan struct{})
		go func(tid int) { b.await(tid); close(c) }(tid)
		select {
		case <-c:
		case <-time.After(10 * time.Second):
			t.Fatalf("await(%d) blocked after cancel", tid)
		}
	}
}

// TestPanicReleasesTreeBarrier is the runtime-level companion: a panic
// on one thread of a tree-barrier team must cancel the barrier so the
// region joins, and the panic must reach the master.
func TestPanicReleasesTreeBarrier(t *testing.T) {
	r := newRT(t, Config{NumThreads: 8, TreeBarrierThreshold: 1})
	expectRegionPanic(t, "thread 3", func() {
		r.Parallel(func(tc *ThreadCtx) {
			if tc.ThreadNum() == 3 {
				panic("tree boom")
			}
			tc.Barrier()
		})
	})
	var ok atomic.Int32
	r.Parallel(func(tc *ThreadCtx) { ok.Add(1) })
	if ok.Load() != 8 {
		t.Errorf("region after panic ran %d threads, want 8", ok.Load())
	}
}

// TestConfigFromEnvSyncKnobs covers the GOMP_TREE_THRESHOLD and
// GOMP_BARRIER_SPIN extension variables.
func TestConfigFromEnvSyncKnobs(t *testing.T) {
	cfg, err := ConfigFromEnv(Config{}, envLookup(map[string]string{
		"GOMP_TREE_THRESHOLD": "-1",
		"GOMP_BARRIER_SPIN":   "512",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TreeBarrierThreshold != -1 || cfg.BarrierSpin != 512 {
		t.Errorf("sync knobs wrong: %+v", cfg)
	}
	if _, err := ConfigFromEnv(Config{}, envLookup(map[string]string{
		"GOMP_TREE_THRESHOLD": "many",
	})); err == nil {
		t.Error("malformed GOMP_TREE_THRESHOLD accepted")
	}
	if _, err := ConfigFromEnv(Config{}, envLookup(map[string]string{
		"GOMP_BARRIER_SPIN": "1e4",
	})); err == nil {
		t.Error("malformed GOMP_BARRIER_SPIN accepted")
	}
}
