package omp

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"goomp/internal/collector"
)

func TestTasksAllExecuteByBarrier(t *testing.T) {
	r := newRT(t, Config{NumThreads: 4})
	const perThread = 50
	var ran atomic.Int64
	r.Parallel(func(tc *ThreadCtx) {
		for i := 0; i < perThread; i++ {
			tc.Task(func(*ThreadCtx) { ran.Add(1) })
		}
		tc.Barrier()
		// Every task of the region completes at the barrier.
		if got := ran.Load(); got != 4*perThread {
			t.Errorf("after barrier: %d tasks ran, want %d", got, 4*perThread)
		}
	})
}

func TestTasksCompleteAtRegionEnd(t *testing.T) {
	r := newRT(t, Config{NumThreads: 3})
	var ran atomic.Int64
	r.Parallel(func(tc *ThreadCtx) {
		for i := 0; i < 20; i++ {
			tc.Task(func(*ThreadCtx) { ran.Add(1) })
		}
		// No explicit barrier: the region's closing implicit barrier
		// must still drain everything.
	})
	if got := ran.Load(); got != 60 {
		t.Errorf("%d tasks ran, want 60", got)
	}
}

func TestTaskwaitWaitsForChildren(t *testing.T) {
	r := newRT(t, Config{NumThreads: 4})
	r.Parallel(func(tc *ThreadCtx) {
		tc.Master(func() {
			var done atomic.Int64
			for i := 0; i < 30; i++ {
				tc.Task(func(*ThreadCtx) { done.Add(1) })
			}
			tc.Taskwait()
			if done.Load() != 30 {
				t.Errorf("taskwait returned with %d/30 children done", done.Load())
			}
		})
	})
}

func TestTaskwaitWithoutTasksIsNoop(t *testing.T) {
	r := newRT(t, Config{NumThreads: 2})
	r.Parallel(func(tc *ThreadCtx) {
		tc.Taskwait() // must not block or panic
	})
}

func TestNestedTasks(t *testing.T) {
	r := newRT(t, Config{NumThreads: 4})
	var leaves atomic.Int64
	r.Parallel(func(tc *ThreadCtx) {
		tc.Master(func() {
			for i := 0; i < 8; i++ {
				tc.Task(func(inner *ThreadCtx) {
					for j := 0; j < 4; j++ {
						inner.Task(func(*ThreadCtx) { leaves.Add(1) })
					}
					// The implicit taskwait at task end joins the
					// four children before the task completes.
				})
			}
			tc.Taskwait()
			if got := leaves.Load(); got != 32 {
				t.Errorf("after taskwait: %d leaves, want 32", got)
			}
		})
	})
}

func TestTaskRecursiveFibonacci(t *testing.T) {
	// The canonical OpenMP 3.0 demo: task-parallel fib with taskwait.
	r := newRT(t, Config{NumThreads: 4})
	var fib func(tc *ThreadCtx, n int) int64
	fib = func(tc *ThreadCtx, n int) int64 {
		if n < 2 {
			return int64(n)
		}
		var a, b int64
		tc.Task(func(inner *ThreadCtx) { a = fib(inner, n-1) })
		b = fib(tc, n-2)
		tc.Taskwait()
		return a + b
	}
	var got int64
	r.Parallel(func(tc *ThreadCtx) {
		tc.SingleNoWait(func() { got = fib(tc, 15) })
		tc.Barrier()
	})
	if got != 610 {
		t.Errorf("fib(15) = %d, want 610", got)
	}
}

func TestTaskEvents(t *testing.T) {
	r := newRT(t, Config{NumThreads: 2})
	q := r.Collector().NewQueue()
	collector.Control(q, collector.ReqStart)
	var created, began, ended atomic.Int64
	h := r.Collector().NewCallbackHandle(func(e collector.Event, ti *collector.ThreadInfo) {
		switch e {
		case collector.EventTaskCreate:
			created.Add(1)
		case collector.EventThrBeginTask:
			began.Add(1)
		case collector.EventThrEndTask:
			ended.Add(1)
		}
	})
	for _, e := range []collector.Event{
		collector.EventTaskCreate, collector.EventThrBeginTask, collector.EventThrEndTask,
	} {
		collector.Register(q, e, h)
	}
	r.Parallel(func(tc *ThreadCtx) {
		for i := 0; i < 10; i++ {
			tc.Task(func(*ThreadCtx) {})
		}
		tc.Taskwait()
	})
	if created.Load() != 20 || began.Load() != 20 || ended.Load() != 20 {
		t.Errorf("task events = create %d, begin %d, end %d; want 20 each",
			created.Load(), began.Load(), ended.Load())
	}
}

// Property: an arbitrary tree of task creations always fully executes
// by region end, with every task run exactly once.
func TestTaskTreeProperty(t *testing.T) {
	f := func(widths []uint8, pRaw uint8) bool {
		if len(widths) > 6 {
			widths = widths[:6]
		}
		p := 1 + int(pRaw%4)
		r := New(Config{NumThreads: p})
		defer r.Close()
		var count atomic.Int64
		var expect int64 = 0
		// Expected count: sum over levels of products of widths.
		prod := int64(1)
		for _, w := range widths {
			prod *= int64(w%3 + 1)
			expect += prod
		}
		var spawn func(tc *ThreadCtx, level int)
		spawn = func(tc *ThreadCtx, level int) {
			if level >= len(widths) {
				return
			}
			n := int(widths[level]%3 + 1)
			for i := 0; i < n; i++ {
				tc.Task(func(inner *ThreadCtx) {
					count.Add(1)
					spawn(inner, level+1)
				})
			}
		}
		r.Parallel(func(tc *ThreadCtx) {
			tc.SingleNoWait(func() { spawn(tc, 0) })
			tc.Barrier()
		})
		return count.Load() == expect
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLoopEventsOption(t *testing.T) {
	run := func(enabled bool) (int64, uint64) {
		r := New(Config{NumThreads: 2, LoopEvents: enabled})
		defer r.Close()
		q := r.Collector().NewQueue()
		collector.Control(q, collector.ReqStart)
		var begins atomic.Int64
		h := r.Collector().NewCallbackHandle(func(e collector.Event, ti *collector.ThreadInfo) {
			if e == collector.EventThrBeginLoop {
				begins.Add(1)
			}
		})
		collector.Register(q, collector.EventThrBeginLoop, h)
		r.Parallel(func(tc *ThreadCtx) {
			tc.For(16, func(int) {})
			tc.ForSched(16, ScheduleDynamic, 2, func(lo, hi int) {})
		})
		var loopID uint64
		if ti := r.Collector().Thread(1); ti != nil {
			loopID = ti.LoopID()
		}
		return begins.Load(), loopID
	}
	begins, loopID := run(true)
	// 2 threads × 2 loops.
	if begins != 4 {
		t.Errorf("loop begin events = %d, want 4", begins)
	}
	if loopID != 2 {
		t.Errorf("slave loop ID = %d, want 2", loopID)
	}
	begins, loopID = run(false)
	if begins != 0 || loopID != 0 {
		t.Errorf("loop events fired with option off: %d events, ID %d", begins, loopID)
	}
}

func TestLoopIDRelatesToBarrierID(t *testing.T) {
	// The extension's purpose: after each worksharing loop with its
	// implicit barrier, loop ID k pairs with barrier wait ID k (when
	// the region does nothing else).
	r := newRT(t, Config{NumThreads: 2, LoopEvents: true})
	r.Parallel(func(tc *ThreadCtx) {
		for k := 0; k < 5; k++ {
			tc.For(8, func(int) {})
			if got := tc.Info().LoopID(); got != uint64(k+1) {
				t.Errorf("loop ID = %d, want %d", got, k+1)
			}
			if got := tc.Info().WaitID(collector.WaitBarrier); got != uint64(k+1) {
				t.Errorf("barrier ID = %d, want %d", got, k+1)
			}
		}
	})
}

func TestTeamInfoSitePC(t *testing.T) {
	r := newRT(t, Config{NumThreads: 2})
	var pc1, pc2, pc3 uintptr
	for i := 0; i < 2; i++ {
		r.Parallel(func(tc *ThreadCtx) {
			tc.Master(func() {
				if i == 0 {
					pc1 = tc.Info().Team().SitePC
				} else {
					pc2 = tc.Info().Team().SitePC
				}
			})
		})
	}
	r.Parallel(func(tc *ThreadCtx) {
		tc.Master(func() { pc3 = tc.Info().Team().SitePC })
	})
	if pc1 == 0 || pc1 != pc2 {
		t.Errorf("same site got PCs %#x and %#x", pc1, pc2)
	}
	if pc3 == pc1 {
		t.Error("distinct sites share a PC")
	}
}
