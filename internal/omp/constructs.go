package omp

import (
	"sync/atomic"

	"goomp/internal/collector"
)

// singleDesc is the shared descriptor of one single-construct instance.
type singleDesc struct {
	taken   atomic.Bool
	arrived atomic.Int32
}

// Single executes fn on exactly one thread of the team (whichever
// arrives first) and ends with an implicit barrier, like a single
// construct without a nowait clause. The modified OpenUH translation
// inserts runtime calls at both the beginning and the end of the
// construct so that both the single-begin and single-end events are
// captured (§IV-C.6); the executing thread's state defaults to
// THR_WORK_STATE, as the paper chooses for these constructs.
func (tc *ThreadCtx) Single(fn func()) {
	tc.singleNoWait(fn)
	tc.implicitBarrier()
}

// SingleNoWait is Single with the nowait clause.
func (tc *ThreadCtx) SingleNoWait(fn func()) {
	tc.singleNoWait(fn)
}

func (tc *ThreadCtx) singleNoWait(fn func()) {
	seq := tc.singleSeq
	tc.singleSeq++
	t := tc.team
	t.wsMu.Lock()
	sd := t.singles[seq]
	if sd == nil {
		sd = new(singleDesc)
		t.singles[seq] = sd
	}
	t.wsMu.Unlock()

	if sd.taken.CompareAndSwap(false, true) {
		tc.rt.col.Event(tc.td, collector.EventThrBeginSingle)
		tc.td.SetState(collector.StateWorking)
		fn()
		// The extra runtime call at the end of the translated single
		// construct ensures the single exit event is captured.
		tc.rt.col.Event(tc.td, collector.EventThrEndSingle)
	}
	if int(sd.arrived.Add(1)) == t.size {
		t.wsMu.Lock()
		delete(t.singles, seq)
		t.wsMu.Unlock()
	}
}

// Master executes fn on the master thread (thread 0) only; there is no
// synchronization at entry or exit. The modified translation brackets
// the region with two runtime calls so both master events fire
// (§IV-C.6).
func (tc *ThreadCtx) Master(fn func()) {
	if tc.id != 0 {
		return
	}
	tc.rt.col.Event(tc.td, collector.EventThrBeginMaster)
	tc.td.SetState(collector.StateWorking)
	fn()
	tc.rt.col.Event(tc.td, collector.EventThrEndMaster)
}
