package omp

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// OpenMP environment-variable configuration: real OpenMP runtimes read
// their ICVs from OMP_* variables at startup. ConfigFromEnv builds a
// Config the same way, so command-line tools and tests can configure
// the runtime exactly as an OpenMP user would.
//
// Recognized variables:
//
//	OMP_NUM_THREADS=n            team size
//	OMP_SCHEDULE=kind[,chunk]    schedule for ScheduleRuntime loops
//	OMP_NESTED=true|false        true nested parallel regions
//	OMP_WAIT_POLICY=active|passive   spinning vs blocking barriers
//
// Extension variables for the collector behaviour:
//
//	GOMP_ATOMIC_EVENTS=true|false    atomic wait events (§IV-C.7)
//	GOMP_LOOP_EVENTS=true|false      worksharing loop events (§VI)
//	GOMP_CALLBACK_BUDGET=duration    callback watchdog budget (e.g. 100us)
//	GOMP_WATCHDOG_SAMPLE=n           watchdog sampling interval
//	GOMP_TREE_THRESHOLD=n            team size above which barriers use the
//	                                 combining tree (0 default, <0 never)
//	GOMP_BARRIER_SPIN=n              barrier waiter spin budget before
//	                                 parking (0 policy default, <0 none)
//	GOMP_STEAL_THRESHOLD=n           dynamic loops with >= n iterations
//	                                 run under the steal schedule
//	                                 (0 disables the fast path)
//	GOMP_OVERHEAD_CEILING=x          target max profiling overhead for a
//	                                 governed tool attachment, as a
//	                                 fraction ("0.02") or percentage
//	                                 ("2%") of wall time

// ConfigFromEnv parses the OpenMP environment variables from lookup
// (typically os.LookupEnv) over the given base configuration. Unset
// variables leave the base value; malformed values return an error
// naming the variable.
func ConfigFromEnv(base Config, lookup func(string) (string, bool)) (Config, error) {
	cfg := base
	if v, ok := lookup("OMP_NUM_THREADS"); ok {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || n < 1 {
			return cfg, fmt.Errorf("omp: bad OMP_NUM_THREADS %q", v)
		}
		cfg.NumThreads = n
	}
	if v, ok := lookup("OMP_SCHEDULE"); ok {
		sched, chunk, err := ParseSchedule(v)
		if err != nil {
			return cfg, err
		}
		cfg.Schedule = sched
		cfg.Chunk = chunk
	}
	if v, ok := lookup("OMP_NESTED"); ok {
		b, err := parseBool(v)
		if err != nil {
			return cfg, fmt.Errorf("omp: bad OMP_NESTED %q", v)
		}
		cfg.Nested = b
	}
	if v, ok := lookup("OMP_WAIT_POLICY"); ok {
		switch strings.ToLower(strings.TrimSpace(v)) {
		case "active":
			cfg.SpinBarrier = true
		case "passive":
			cfg.SpinBarrier = false
		default:
			return cfg, fmt.Errorf("omp: bad OMP_WAIT_POLICY %q", v)
		}
	}
	if v, ok := lookup("GOMP_ATOMIC_EVENTS"); ok {
		b, err := parseBool(v)
		if err != nil {
			return cfg, fmt.Errorf("omp: bad GOMP_ATOMIC_EVENTS %q", v)
		}
		cfg.AtomicEvents = b
	}
	if v, ok := lookup("GOMP_LOOP_EVENTS"); ok {
		b, err := parseBool(v)
		if err != nil {
			return cfg, fmt.Errorf("omp: bad GOMP_LOOP_EVENTS %q", v)
		}
		cfg.LoopEvents = b
	}
	if v, ok := lookup("GOMP_CALLBACK_BUDGET"); ok {
		d, err := time.ParseDuration(strings.TrimSpace(v))
		if err != nil || d < 0 {
			return cfg, fmt.Errorf("omp: bad GOMP_CALLBACK_BUDGET %q", v)
		}
		cfg.CallbackBudget = d
	}
	if v, ok := lookup("GOMP_WATCHDOG_SAMPLE"); ok {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || n < 1 {
			return cfg, fmt.Errorf("omp: bad GOMP_WATCHDOG_SAMPLE %q", v)
		}
		cfg.WatchdogSample = n
	}
	if v, ok := lookup("GOMP_TREE_THRESHOLD"); ok {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			return cfg, fmt.Errorf("omp: bad GOMP_TREE_THRESHOLD %q", v)
		}
		cfg.TreeBarrierThreshold = n
	}
	if v, ok := lookup("GOMP_BARRIER_SPIN"); ok {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			return cfg, fmt.Errorf("omp: bad GOMP_BARRIER_SPIN %q", v)
		}
		cfg.BarrierSpin = n
	}
	if v, ok := lookup("GOMP_STEAL_THRESHOLD"); ok {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || n < 0 {
			return cfg, fmt.Errorf("omp: bad GOMP_STEAL_THRESHOLD %q", v)
		}
		cfg.StealThreshold = n
	}
	if v, ok := lookup("GOMP_OVERHEAD_CEILING"); ok {
		c, err := ParseOverheadCeiling(v)
		if err != nil {
			return cfg, err
		}
		cfg.OverheadCeiling = c
	}
	return cfg, nil
}

// ParseOverheadCeiling parses a GOMP_OVERHEAD_CEILING value: a
// fraction of wall time like "0.02", or a percentage like "2%", in
// (0, 1] (equivalently (0%, 100%]). A malformed or out-of-range value
// is an error naming the variable and the accepted forms — never a
// silent fallback to an ungoverned run.
func ParseOverheadCeiling(v string) (float64, error) {
	s := strings.TrimSpace(v)
	scale := 1.0
	if strings.HasSuffix(s, "%") {
		s = strings.TrimSpace(strings.TrimSuffix(s, "%"))
		scale = 0.01
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("omp: bad GOMP_OVERHEAD_CEILING %q (want a fraction like 0.02 or a percentage like 2%%)", v)
	}
	f *= scale
	if f <= 0 || f > 1 {
		return 0, fmt.Errorf("omp: bad GOMP_OVERHEAD_CEILING %q (must be in (0, 1], e.g. 0.02 or 2%%)", v)
	}
	return f, nil
}

// ParseSchedule parses an OMP_SCHEDULE value: "kind" or "kind,chunk"
// with kind one of static, dynamic, guided, steal (case-insensitive).
// An unknown kind is an error naming the kinds accepted — never a
// silent fallback to a default schedule.
func ParseSchedule(v string) (Schedule, int, error) {
	parts := strings.SplitN(v, ",", 2)
	var sched Schedule
	switch strings.ToLower(strings.TrimSpace(parts[0])) {
	case "static":
		sched = ScheduleStatic
	case "dynamic":
		sched = ScheduleDynamic
	case "guided":
		sched = ScheduleGuided
	case "steal":
		sched = ScheduleSteal
	default:
		return 0, 0, fmt.Errorf("omp: bad OMP_SCHEDULE kind %q (want static, dynamic, guided or steal)", parts[0])
	}
	chunk := 0
	if len(parts) == 2 {
		c, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil || c < 1 {
			return 0, 0, fmt.Errorf("omp: bad OMP_SCHEDULE chunk %q", parts[1])
		}
		chunk = c
	}
	return sched, chunk, nil
}

func parseBool(v string) (bool, error) {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "true", "1", "yes", "on":
		return true, nil
	case "false", "0", "no", "off":
		return false, nil
	}
	return false, fmt.Errorf("not a boolean: %q", v)
}
