package omp

import (
	"sync"
	"sync/atomic"

	"goomp/internal/collector"
)

// Schedule selects how a worksharing loop's iterations are divided
// among the team, mirroring OpenMP's schedule kinds.
type Schedule int

const (
	// ScheduleStatic divides iterations into contiguous blocks, one per
	// thread (chunk 0), or round-robins fixed chunks (chunk > 0). This
	// is OMP_STATIC_EVEN / __ompc_static_init_4 territory: each thread
	// computes its own bounds with no shared state.
	ScheduleStatic Schedule = iota
	// ScheduleDynamic hands out chunks first-come first-served from a
	// shared counter.
	ScheduleDynamic
	// ScheduleGuided hands out shrinking chunks proportional to the
	// remaining iterations, bounded below by the chunk size.
	ScheduleGuided
	// ScheduleRuntime defers to the runtime's configured Schedule/Chunk
	// ICVs.
	ScheduleRuntime
)

var scheduleNames = [...]string{
	ScheduleStatic:  "static",
	ScheduleDynamic: "dynamic",
	ScheduleGuided:  "guided",
	ScheduleRuntime: "runtime",
}

func (s Schedule) String() string {
	if s < 0 || int(s) >= len(scheduleNames) {
		return "schedule(?)"
	}
	return scheduleNames[s]
}

// StaticBounds computes the iteration block [lo, hi) of thread tid in a
// team of nthr for a loop of n iterations under the even static
// schedule — the calculation __ompc_static_init_4 performs for the
// outlined loop in Fig. 2 of the paper. Iterations are distributed as
// evenly as possible, the first n%nthr threads receiving one extra.
func StaticBounds(tid, nthr, n int) (lo, hi int) {
	if nthr <= 0 || n <= 0 {
		return 0, 0
	}
	base := n / nthr
	rem := n % nthr
	lo = tid*base + min(tid, rem)
	hi = lo + base
	if tid < rem {
		hi++
	}
	return lo, hi
}

// loopDesc is the shared descriptor of one worksharing loop instance.
type loopDesc struct {
	n     int
	chunk int

	next    atomic.Int64 // next unassigned iteration (dynamic/guided)
	arrived atomic.Int32 // threads that finished the loop body

	// Ordered-clause support: ordered sections retire strictly in
	// iteration order.
	omu         sync.Mutex
	ocond       *sync.Cond
	orderedNext int64
}

// getLoop returns the descriptor for the worksharing construct with
// this thread's current sequence number, creating it if this thread is
// the first to arrive, and advances the thread's sequence.
func (tc *ThreadCtx) getLoop(n, chunk int) *loopDesc {
	seq := tc.loopSeq
	tc.loopSeq++
	t := tc.team
	t.wsMu.Lock()
	ld := t.loops[seq]
	if ld == nil {
		ld = &loopDesc{n: n, chunk: chunk}
		ld.ocond = sync.NewCond(&ld.omu)
		t.loops[seq] = ld
	}
	t.wsMu.Unlock()
	return ld
}

// doneLoop retires the thread from the loop; the last thread to leave
// removes the descriptor so the map does not grow with the iteration
// count of the program.
func (tc *ThreadCtx) doneLoop(seq uint64, ld *loopDesc) {
	if int(ld.arrived.Add(1)) == tc.team.size {
		t := tc.team
		t.wsMu.Lock()
		delete(t.loops, seq)
		t.wsMu.Unlock()
	}
}

// loopBegin fires the worksharing-loop begin event and advances the
// thread's loop ID when the extension is enabled. A tool relates the
// loop to its closing barrier by pairing this loop ID with the barrier
// wait ID that follows.
func (tc *ThreadCtx) loopBegin() {
	if !tc.rt.cfg.LoopEvents {
		return
	}
	tc.td.EnterLoop()
	tc.rt.col.Event(tc.td, collector.EventThrBeginLoop)
}

func (tc *ThreadCtx) loopEnd() {
	if !tc.rt.cfg.LoopEvents {
		return
	}
	tc.rt.col.Event(tc.td, collector.EventThrEndLoop)
}

// For distributes iterations [0, n) over the team with the even static
// schedule and calls body for each local iteration, then joins the
// implicit barrier that ends the construct.
func (tc *ThreadCtx) For(n int, body func(i int)) {
	tc.ForNoWait(n, body)
	tc.implicitBarrier()
}

// ForNoWait is For with the nowait clause: no barrier at loop end.
func (tc *ThreadCtx) ForNoWait(n int, body func(i int)) {
	tc.loopBegin()
	lo, hi := StaticBounds(tc.id, tc.team.size, n)
	for i := lo; i < hi; i++ {
		body(i)
	}
	tc.loopEnd()
}

// ForSched distributes iterations [0, n) under the given schedule and
// chunk size, invoking body once per assigned chunk [lo, hi), then
// joins the implicit barrier. Every thread of the team must execute
// the construct (OpenMP worksharing rule).
func (tc *ThreadCtx) ForSched(n int, sched Schedule, chunk int, body func(lo, hi int)) {
	tc.ForSchedNoWait(n, sched, chunk, body)
	tc.implicitBarrier()
}

// ForSchedNoWait is ForSched with the nowait clause.
func (tc *ThreadCtx) ForSchedNoWait(n int, sched Schedule, chunk int, body func(lo, hi int)) {
	tc.loopBegin()
	defer tc.loopEnd()
	if sched == ScheduleRuntime {
		sched = tc.rt.cfg.Schedule
		if sched == ScheduleRuntime {
			sched = ScheduleStatic
		}
		chunk = tc.rt.cfg.Chunk
	}
	if chunk <= 0 && sched != ScheduleStatic {
		chunk = 1
	}
	switch sched {
	case ScheduleStatic:
		if chunk <= 0 {
			lo, hi := StaticBounds(tc.id, tc.team.size, n)
			if lo < hi {
				body(lo, hi)
			}
			return
		}
		// Round-robin chunks: thread tid takes chunks tid, tid+p,
		// tid+2p, ...
		p := tc.team.size
		for lo := tc.id * chunk; lo < n; lo += p * chunk {
			hi := min(lo+chunk, n)
			body(lo, hi)
		}
	case ScheduleDynamic:
		seq := tc.loopSeq
		ld := tc.getLoop(n, chunk)
		for {
			lo := int(ld.next.Add(int64(chunk))) - chunk
			if lo >= n {
				break
			}
			body(lo, min(lo+chunk, n))
		}
		tc.doneLoop(seq, ld)
	case ScheduleGuided:
		seq := tc.loopSeq
		ld := tc.getLoop(n, chunk)
		p := int64(tc.team.size)
		for {
			lo := ld.next.Load()
			if lo >= int64(n) {
				break
			}
			size := (int64(n) - lo) / (2 * p)
			if size < int64(chunk) {
				size = int64(chunk)
			}
			if !ld.next.CompareAndSwap(lo, lo+size) {
				continue
			}
			body(int(lo), min(int(lo+size), n))
		}
		tc.doneLoop(seq, ld)
	default:
		panic("omp: unknown schedule kind")
	}
}

// Ordered is the handle a ForOrdered body uses to run its ordered
// section in iteration order.
type Ordered struct {
	tc *ThreadCtx
	ld *loopDesc
	i  int
}

// Do executes fn as the ordered section of iteration i: it waits until
// every earlier iteration's ordered section has retired. While
// waiting, the thread is in THR_ODWT_STATE and triggers the ordered
// wait events; its ordered wait ID increments per wait.
func (o *Ordered) Do(fn func()) {
	tc, ld := o.tc, o.ld
	ld.omu.Lock()
	if ld.orderedNext != int64(o.i) {
		tc.td.EnterWait(collector.StateOrderedWait)
		tc.rt.col.Event(tc.td, collector.EventThrBeginOdwt)
		for ld.orderedNext != int64(o.i) {
			ld.ocond.Wait()
		}
		tc.rt.col.Event(tc.td, collector.EventThrEndOdwt)
		tc.td.SetState(collector.StateWorking)
	}
	ld.omu.Unlock()

	tc.rt.col.Event(tc.td, collector.EventThrBeginOrdered)
	fn()
	tc.rt.col.Event(tc.td, collector.EventThrEndOrdered)

	ld.omu.Lock()
	ld.orderedNext++
	ld.ocond.Broadcast()
	ld.omu.Unlock()
}

// ForOrdered runs a worksharing loop with the ordered clause: body
// receives each iteration index and an Ordered handle whose Do method
// serializes its section in iteration order. The schedule is static
// with per-iteration granularity so ordered sections cannot deadlock:
// every thread processes its iterations in increasing order.
func (tc *ThreadCtx) ForOrdered(n int, body func(i int, ord *Ordered)) {
	seq := tc.loopSeq
	ld := tc.getLoop(n, 1)
	lo, hi := StaticBounds(tc.id, tc.team.size, n)
	for i := lo; i < hi; i++ {
		body(i, &Ordered{tc: tc, ld: ld, i: i})
	}
	tc.doneLoop(seq, ld)
	tc.implicitBarrier()
}

// Sections executes each function as an OpenMP section: sections are
// handed to threads first-come first-served, and the construct ends
// with an implicit barrier.
func (tc *ThreadCtx) Sections(fns ...func()) {
	seq := tc.loopSeq
	ld := tc.getLoop(len(fns), 1)
	for {
		i := int(ld.next.Add(1)) - 1
		if i >= len(fns) {
			break
		}
		fns[i]()
	}
	tc.doneLoop(seq, ld)
	tc.implicitBarrier()
}
