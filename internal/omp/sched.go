package omp

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"goomp/internal/collector"
	"goomp/internal/super"
)

// Schedule selects how a worksharing loop's iterations are divided
// among the team, mirroring OpenMP's schedule kinds.
type Schedule int

const (
	// ScheduleStatic divides iterations into contiguous blocks, one per
	// thread (chunk 0), or round-robins fixed chunks (chunk > 0). This
	// is OMP_STATIC_EVEN / __ompc_static_init_4 territory: each thread
	// computes its own bounds with no shared state.
	ScheduleStatic Schedule = iota
	// ScheduleDynamic hands out chunks first-come first-served from a
	// shared counter.
	ScheduleDynamic
	// ScheduleGuided hands out shrinking chunks proportional to the
	// remaining iterations, bounded below by the chunk size.
	ScheduleGuided
	// ScheduleRuntime defers to the runtime's configured Schedule/Chunk
	// ICVs.
	ScheduleRuntime
	// ScheduleSteal pre-partitions chunks evenly into per-thread chunk
	// deques; a thread that runs dry steals the top half of a victim's
	// remaining range (see steal.go). Chunk boundaries are identical to
	// ScheduleDynamic with the same chunk size; only the chunk-to-thread
	// assignment differs.
	ScheduleSteal
)

var scheduleNames = [...]string{
	ScheduleStatic:  "static",
	ScheduleDynamic: "dynamic",
	ScheduleGuided:  "guided",
	ScheduleRuntime: "runtime",
	ScheduleSteal:   "steal",
}

func (s Schedule) String() string {
	if s < 0 || int(s) >= len(scheduleNames) {
		return "schedule(?)"
	}
	return scheduleNames[s]
}

// StaticBounds computes the iteration block [lo, hi) of thread tid in a
// team of nthr for a loop of n iterations under the even static
// schedule — the calculation __ompc_static_init_4 performs for the
// outlined loop in Fig. 2 of the paper. Iterations are distributed as
// evenly as possible, the first n%nthr threads receiving one extra.
func StaticBounds(tid, nthr, n int) (lo, hi int) {
	if nthr <= 0 || n <= 0 {
		return 0, 0
	}
	base := n / nthr
	rem := n % nthr
	lo = tid*base + min(tid, rem)
	hi = lo + base
	if tid < rem {
		hi++
	}
	return lo, hi
}

// loopRingSize is the number of preallocated worksharing-loop
// descriptors per team. A thread can run at most loopRingSize nowait
// constructs ahead of the slowest team member before it waits for a
// slot to retire; eight covers every loop-heavy kernel in the repo
// without ever blocking.
const loopRingSize = 8

// maxBatchChunks bounds how many schedule chunks a dynamic-loop claim
// takes from the shared counter in one atomic operation.
const maxBatchChunks = 16

// loopDesc is the shared descriptor of one worksharing loop instance:
// one reusable slot of the team's descriptor ring. The slot cycles
// through episodes identified by the construct sequence number: claim
// (first arriver wins initialization), ready (initialized fields
// published), free (all threads retired, slot reusable). The hot
// atomics next and arrived sit on their own cache lines so chunk
// claims do not collide with retirement counts or the episode words.
type loopDesc struct {
	// Episode configuration: written by the claiming thread, published
	// by ready, read-only until the slot retires.
	n     int
	chunk int
	seq   int64

	claim atomic.Int64 // sequence number that claimed the slot
	ready atomic.Int64 // sequence number whose init is published
	free  atomic.Int64 // last fully retired sequence number
	_     [cacheLinePad - 24]byte

	next atomic.Int64 // next unassigned iteration (dynamic/guided)
	_    [cacheLinePad - 8]byte

	arrived atomic.Int32 // threads that finished the loop body
	_       [cacheLinePad - 4]byte

	// Ordered-clause support: ordered sections retire strictly in
	// iteration order. The condition variable is created lazily by the
	// first Ordered.Do on the slot and persists across episodes.
	omu         sync.Mutex
	ocond       *sync.Cond
	orderedNext int64

	// deq holds the per-thread chunk deques of a steal-schedule episode
	// (see steal.go). Allocated by the first steal loop to claim the
	// slot and reused by every later episode, so steady-state steal
	// loops allocate nothing.
	deq []chunkDeque
}

// getLoop returns the descriptor for the worksharing construct with
// this thread's current sequence number and advances the sequence. The
// descriptor is a ring slot: the first thread to arrive claims and
// initializes it; later threads wait (yielding) for the published
// initialization. No lock is taken and nothing is allocated.
func (tc *ThreadCtx) getLoop(n, chunk int) *loopDesc {
	return tc.getLoopKind(n, chunk, false)
}

// getLoopKind is getLoop with schedule-specific episode setup: a steal
// episode additionally pre-partitions the chunk index space [0, nchunks)
// evenly into the slot's per-thread chunk deques (the same split as
// StaticBounds, so adjacent chunks start on the same thread). The
// claiming thread writes every deque word before publishing ready, so
// teammates acquire fully initialized deques through the ready load.
func (tc *ThreadCtx) getLoopKind(n, chunk int, steal bool) *loopDesc {
	s := int64(tc.loopSeq)
	tc.loopSeq++
	ld := &tc.team.ring[s%loopRingSize]
	prev := s - loopRingSize
	// A slot is reusable once its previous tenant has fully retired;
	// waiting here only happens when this thread is loopRingSize
	// nowait constructs ahead of a teammate.
	for ld.free.Load() != prev {
		runtime.Gosched()
	}
	if ld.claim.Load() == prev && ld.claim.CompareAndSwap(prev, s) {
		ld.n, ld.chunk, ld.seq = n, chunk, s
		ld.next.Store(0)
		ld.arrived.Store(0)
		ld.orderedNext = 0
		if steal {
			p := tc.team.size
			if len(ld.deq) < p {
				ld.deq = make([]chunkDeque, p)
			}
			nchunks := 0
			if chunk > 0 {
				nchunks = (n + chunk - 1) / chunk
			}
			for i := 0; i < p; i++ {
				lo, hi := StaticBounds(i, p, nchunks)
				ld.deq[i].w.Store(packChunks(uint32(lo), uint32(hi)))
			}
		}
		ld.ready.Store(s)
	} else {
		for ld.ready.Load() != s {
			runtime.Gosched()
		}
	}
	return ld
}

// doneLoop retires the thread from the loop; the last thread to leave
// marks the ring slot free for its next tenant. Retiring a construct
// is forward progress the hang supervisor must see, or a long loop
// with every other thread parked at the closing barrier would look
// like a hang.
func (tc *ThreadCtx) doneLoop(ld *loopDesc) {
	if int(ld.arrived.Add(1)) == tc.team.size {
		ld.free.Store(ld.seq)
	}
	if s := super.Enabled(); s != nil {
		s.Note()
	}
}

// noteChunk reports one schedule-chunk claim to the hang supervisor —
// the finest-grained progress signal, which is what keeps a single
// long dynamic/guided loop from tripping the watchdog while its
// teammates wait. Free when supervision is off (one atomic load).
func noteChunk() {
	if s := super.Enabled(); s != nil {
		s.Note()
	}
}

// loopBegin fires the worksharing-loop begin event and advances the
// thread's loop ID when the extension is enabled. A tool relates the
// loop to its closing barrier by pairing this loop ID with the barrier
// wait ID that follows.
func (tc *ThreadCtx) loopBegin() {
	if !tc.rt.cfg.LoopEvents {
		return
	}
	tc.td.EnterLoop()
	tc.rt.col.Event(tc.td, collector.EventThrBeginLoop)
}

func (tc *ThreadCtx) loopEnd() {
	if !tc.rt.cfg.LoopEvents {
		return
	}
	tc.rt.col.Event(tc.td, collector.EventThrEndLoop)
}

// For distributes iterations [0, n) over the team with the even static
// schedule and calls body for each local iteration, then joins the
// implicit barrier that ends the construct.
func (tc *ThreadCtx) For(n int, body func(i int)) {
	tc.ForNoWait(n, body)
	tc.implicitBarrier()
}

// ForNoWait is For with the nowait clause: no barrier at loop end.
func (tc *ThreadCtx) ForNoWait(n int, body func(i int)) {
	tc.loopBegin()
	lo, hi := StaticBounds(tc.id, tc.team.size, n)
	for i := lo; i < hi; i++ {
		body(i)
	}
	tc.loopEnd()
}

// ForSched distributes iterations [0, n) under the given schedule and
// chunk size, invoking body once per assigned chunk [lo, hi), then
// joins the implicit barrier. Every thread of the team must execute
// the construct (OpenMP worksharing rule).
func (tc *ThreadCtx) ForSched(n int, sched Schedule, chunk int, body func(lo, hi int)) {
	tc.ForSchedNoWait(n, sched, chunk, body)
	tc.implicitBarrier()
}

// ForSchedNoWait is ForSched with the nowait clause.
func (tc *ThreadCtx) ForSchedNoWait(n int, sched Schedule, chunk int, body func(lo, hi int)) {
	tc.loopBegin()
	defer tc.loopEnd()
	if sched == ScheduleRuntime {
		sched = tc.rt.cfg.Schedule
		if sched == ScheduleRuntime {
			sched = ScheduleStatic
		}
		chunk = tc.rt.cfg.Chunk
	}
	if chunk <= 0 && sched != ScheduleStatic {
		chunk = 1
	}
	// Opt-in fast path: above the threshold a dynamic loop runs under
	// the steal schedule. Legal because the chunk boundaries are
	// bit-identical (see steal.go); off by default (threshold 0).
	if sched == ScheduleDynamic {
		if t := tc.rt.cfg.StealThreshold; t > 0 && n >= t {
			sched = ScheduleSteal
		}
	}
	// Loops too large for the packed deque word degrade to dynamic:
	// same boundaries, shared-counter claiming.
	if sched == ScheduleSteal && (n+chunk-1)/chunk >= maxStealChunks {
		sched = ScheduleDynamic
	}
	switch sched {
	case ScheduleStatic:
		if chunk <= 0 {
			lo, hi := StaticBounds(tc.id, tc.team.size, n)
			if lo < hi {
				body(lo, hi)
			}
			return
		}
		// Round-robin chunks: thread tid takes chunks tid, tid+p,
		// tid+2p, ...
		p := tc.team.size
		for lo := tc.id * chunk; lo < n; lo += p * chunk {
			hi := min(lo+chunk, n)
			body(lo, hi)
		}
	case ScheduleDynamic:
		ld := tc.getLoop(n, chunk)
		// Batched claiming: take a chunk-of-chunks sized to the
		// remaining work in one atomic add, then drain it locally chunk
		// by chunk. Chunk boundaries are identical to the unbatched
		// schedule (every claim is a multiple of chunk); only the
		// chunk->thread assignment changes, which the dynamic schedule
		// leaves unspecified. The batch size is remaining >> shift with
		// 2^shift the largest power of two not above 4p*chunk — a shift
		// instead of a division on the claim path — so the shrinking
		// batches bound tail imbalance to about 1/(2p) of the remaining
		// iterations, capped at maxBatchChunks chunks.
		shift := bits.Len64(uint64(4*tc.team.size*chunk)) - 1
		// next is this thread's last-seen claim counter; it may lag the
		// shared counter (teammates claiming concurrently), which only
		// overestimates remaining and never the claimed bounds.
		next := ld.next.Load()
		for {
			remaining := int64(n) - next
			if remaining <= 0 {
				break
			}
			batch := remaining >> shift
			if batch < 1 {
				batch = 1
			} else if batch > maxBatchChunks {
				batch = maxBatchChunks
			}
			claim := batch * int64(chunk)
			end := ld.next.Add(claim)
			lo := end - claim
			if lo >= int64(n) {
				break
			}
			hi := min(end, int64(n))
			for c := lo; c < hi; c += int64(chunk) {
				body(int(c), min(int(c)+chunk, n))
				noteChunk()
			}
			next = end
		}
		tc.doneLoop(ld)
	case ScheduleGuided:
		ld := tc.getLoop(n, chunk)
		p := int64(tc.team.size)
		for {
			lo := ld.next.Load()
			if lo >= int64(n) {
				break
			}
			size := (int64(n) - lo) / (2 * p)
			if size < int64(chunk) {
				size = int64(chunk)
			}
			if !ld.next.CompareAndSwap(lo, lo+size) {
				continue
			}
			body(int(lo), min(int(lo+size), n))
			noteChunk()
		}
		tc.doneLoop(ld)
	case ScheduleSteal:
		tc.forSteal(n, chunk, body)
	default:
		panic("omp: unknown schedule kind")
	}
}

// Ordered is the handle a ForOrdered body uses to run its ordered
// section in iteration order.
type Ordered struct {
	tc *ThreadCtx
	ld *loopDesc
	i  int
}

// Do executes fn as the ordered section of iteration i: it waits until
// every earlier iteration's ordered section has retired. While
// waiting, the thread is in THR_ODWT_STATE and triggers the ordered
// wait events; its ordered wait ID increments per wait.
func (o *Ordered) Do(fn func()) {
	tc, ld := o.tc, o.ld
	ld.omu.Lock()
	if ld.ocond == nil {
		ld.ocond = sync.NewCond(&ld.omu)
	}
	if ld.orderedNext != int64(o.i) {
		tc.td.EnterWait(collector.StateOrderedWait)
		tc.rt.col.Event(tc.td, collector.EventThrBeginOdwt)
		s := super.Enabled()
		var tok uint64
		if s != nil {
			tok = s.BeginWait(tc.superWho(), tc.td.ID,
				super.Resource{Kind: super.ResOrdered,
					ID:     uint64(uintptr(unsafe.Pointer(ld))),
					Detail: fmt.Sprintf("iteration %d", o.i)},
				collector.StateOrderedWait.String())
		}
		for ld.orderedNext != int64(o.i) {
			ld.ocond.Wait()
		}
		if s != nil {
			s.EndWait(tok)
		}
		tc.rt.col.Event(tc.td, collector.EventThrEndOdwt)
		tc.td.SetState(collector.StateWorking)
	}
	ld.omu.Unlock()

	tc.rt.col.Event(tc.td, collector.EventThrBeginOrdered)
	fn()
	tc.rt.col.Event(tc.td, collector.EventThrEndOrdered)

	ld.omu.Lock()
	ld.orderedNext++
	ld.ocond.Broadcast()
	ld.omu.Unlock()
}

// ForOrdered runs a worksharing loop with the ordered clause: body
// receives each iteration index and an Ordered handle whose Do method
// serializes its section in iteration order. The schedule is static
// with per-iteration granularity so ordered sections cannot deadlock:
// every thread processes its iterations in increasing order.
func (tc *ThreadCtx) ForOrdered(n int, body func(i int, ord *Ordered)) {
	ld := tc.getLoop(n, 1)
	lo, hi := StaticBounds(tc.id, tc.team.size, n)
	for i := lo; i < hi; i++ {
		body(i, &Ordered{tc: tc, ld: ld, i: i})
	}
	tc.doneLoop(ld)
	tc.implicitBarrier()
}

// Sections executes each function as an OpenMP section: sections are
// handed to threads first-come first-served, and the construct ends
// with an implicit barrier.
func (tc *ThreadCtx) Sections(fns ...func()) {
	ld := tc.getLoop(len(fns), 1)
	for {
		i := int(ld.next.Add(1)) - 1
		if i >= len(fns) {
			break
		}
		fns[i]()
	}
	tc.doneLoop(ld)
	tc.implicitBarrier()
}
