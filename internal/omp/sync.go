package omp

import (
	"math"
	"sync"
	"sync/atomic"

	"goomp/internal/collector"
	"goomp/internal/super"
)

// Lock is a user-defined OpenMP lock (omp_lock_t). The implementation
// follows the paper's §IV-C.3: acquisition first tries the lock
// without blocking; only if the lock is busy does the thread enter the
// lock-wait state, increment its lock wait ID and trigger the wait
// events. The zero value is an unlocked lock.
type Lock struct {
	mu sync.Mutex
}

// Acquire takes the lock on behalf of tc's thread, tracking the wait
// state and events on contention. tc may be nil (serial code), in
// which case the lock degrades to a plain mutex.
func (l *Lock) Acquire(tc *ThreadCtx) {
	if l.mu.TryLock() {
		if s := super.Enabled(); s != nil {
			s.Acquired(lockRes(l, ""), superWhoOf(tc))
		}
		return
	}
	if tc == nil {
		s := super.Enabled()
		var tok uint64
		if s != nil {
			tok = s.BeginWait("serial", -1, lockRes(l, ""),
				collector.StateLockWait.String())
		}
		l.mu.Lock()
		if s != nil {
			s.EndWait(tok)
			s.Acquired(lockRes(l, ""), "serial")
		}
		return
	}
	td := tc.td
	prev := td.State()
	td.EnterWait(collector.StateLockWait)
	tc.rt.col.Event(td, collector.EventThrBeginLkwt)
	s := super.Enabled()
	var tok uint64
	if s != nil {
		tok = s.BeginWait(tc.superWho(), td.ID, lockRes(l, ""),
			collector.StateLockWait.String())
	}
	l.mu.Lock()
	if s != nil {
		s.EndWait(tok)
		s.Acquired(lockRes(l, ""), tc.superWho())
	}
	tc.rt.col.Event(td, collector.EventThrEndLkwt)
	td.SetState(prev)
}

// TryAcquire takes the lock if it is free, without ever waiting. It
// has no thread context, so supervision records no owner for it: a
// trylock-held lock still shows its waiters, but cannot close a
// wait-for cycle.
func (l *Lock) TryAcquire() bool { return l.mu.TryLock() }

// Release unlocks the lock. Ownership is cleared before the unlock so
// a racing acquirer's ownership record cannot be erased by ours.
func (l *Lock) Release() {
	if s := super.Enabled(); s != nil {
		s.Released(lockRes(l, ""))
	}
	l.mu.Unlock()
}

// NestedLock is an omp_nest_lock_t: the owning thread may re-acquire
// it, and it unlocks when released as many times as acquired. The same
// wait-tracking procedure as Lock applies to nested locks (§IV-C.3).
type NestedLock struct {
	mu    sync.Mutex
	cond  *sync.Cond
	owner *ThreadCtx
	depth int
}

// Acquire takes the nested lock for tc, waiting (in the lock-wait
// state) while another thread owns it.
func (nl *NestedLock) Acquire(tc *ThreadCtx) {
	nl.mu.Lock()
	if nl.cond == nil {
		nl.cond = sync.NewCond(&nl.mu)
	}
	if nl.owner == tc && tc != nil {
		nl.depth++
		nl.mu.Unlock()
		return
	}
	if nl.owner != nil {
		var td *collector.ThreadInfo
		var prev collector.State
		if tc != nil {
			td = tc.td
			prev = td.State()
			td.EnterWait(collector.StateLockWait)
			tc.rt.col.Event(td, collector.EventThrBeginLkwt)
		}
		s := super.Enabled()
		var tok uint64
		if s != nil {
			tid := int32(-1)
			if td != nil {
				tid = td.ID
			}
			tok = s.BeginWait(superWhoOf(tc), tid, nestedLockRes(nl),
				collector.StateLockWait.String())
		}
		for nl.owner != nil {
			nl.cond.Wait()
		}
		if s != nil {
			s.EndWait(tok)
		}
		if tc != nil {
			tc.rt.col.Event(td, collector.EventThrEndLkwt)
			td.SetState(prev)
		}
	}
	nl.owner = tc
	nl.depth = 1
	if s := super.Enabled(); s != nil {
		s.Acquired(nestedLockRes(nl), superWhoOf(tc))
	}
	nl.mu.Unlock()
}

// TryAcquire takes the nested lock if it is free or already owned by
// tc; it reports whether the lock was taken.
func (nl *NestedLock) TryAcquire(tc *ThreadCtx) bool {
	nl.mu.Lock()
	defer nl.mu.Unlock()
	if nl.cond == nil {
		nl.cond = sync.NewCond(&nl.mu)
	}
	if nl.owner == nil || (nl.owner == tc && tc != nil) {
		if nl.owner == nil {
			nl.owner = tc
			nl.depth = 1
			if s := super.Enabled(); s != nil {
				s.Acquired(nestedLockRes(nl), superWhoOf(tc))
			}
		} else {
			nl.depth++
		}
		return true
	}
	return false
}

// Release undoes one Acquire; the final release wakes one waiter.
func (nl *NestedLock) Release() {
	nl.mu.Lock()
	if nl.depth == 0 {
		nl.mu.Unlock()
		panic("omp: release of unheld nested lock")
	}
	nl.depth--
	if nl.depth == 0 {
		nl.owner = nil
		if s := super.Enabled(); s != nil {
			s.Released(nestedLockRes(nl))
		}
		if nl.cond != nil {
			nl.cond.Signal()
		}
	}
	nl.mu.Unlock()
}

// Depth reports the current nesting depth (0 when unheld).
func (nl *NestedLock) Depth() int {
	nl.mu.Lock()
	defer nl.mu.Unlock()
	return nl.depth
}

// Critical executes fn inside the named critical region. The runtime
// keeps one compiler-generated lock per name (the unnamed critical is
// the empty name); waiting to enter tracks THR_CTWT_STATE, the
// critical wait ID and the critical wait events (§IV-C.4).
func (tc *ThreadCtx) Critical(name string, fn func()) {
	l := tc.rt.criticalLock(name)
	tc.enterGeneratedLock(l, criticalDetail(name), collector.StateCriticalWait,
		collector.EventThrBeginCtwt, collector.EventThrEndCtwt)
	fn()
	l.Release()
}

func criticalDetail(name string) string {
	if name == "" {
		return "critical"
	}
	return `critical "` + name + `"`
}

func (r *RT) criticalLock(name string) *Lock {
	r.critMu.Lock()
	l := r.critical[name]
	if l == nil {
		l = new(Lock)
		r.critical[name] = l
	}
	r.critMu.Unlock()
	return l
}

// enterGeneratedLock acquires a compiler-generated lock with the given
// wait state and events — the shared mechanics of critical regions and
// reductions, which OpenUH generates the same way. detail names the
// construct in hang-supervision reports; the resource key is the lock
// address, matching the Released record in Lock.Release.
func (tc *ThreadCtx) enterGeneratedLock(l *Lock, detail string, st collector.State, begin, end collector.Event) {
	if l.mu.TryLock() {
		if s := super.Enabled(); s != nil {
			s.Acquired(lockRes(l, detail), tc.superWho())
		}
		return
	}
	td := tc.td
	prev := td.State()
	td.EnterWait(st)
	tc.rt.col.Event(td, begin)
	s := super.Enabled()
	var tok uint64
	if s != nil {
		tok = s.BeginWait(tc.superWho(), td.ID, lockRes(l, detail), st.String())
	}
	l.mu.Lock()
	if s != nil {
		s.EndWait(tok)
		s.Acquired(lockRes(l, detail), tc.superWho())
	}
	tc.rt.col.Event(td, end)
	td.SetState(prev)
}

// Reduce performs the final update of a reduction: whenever a thread
// enters a reduction operation it sets THR_REDUC_STATE, and the update
// of the shared value is serialized by the team's reduction lock —
// __ompc_reduction / __ompc_end_reduction in the paper's Fig. 2. The
// generic path keeps the lock because the update closure may touch
// arbitrary state; the typed ReduceInt64/ReduceFloat64 entry points
// use the lock-free combining path instead.
func (tc *ThreadCtx) Reduce(update func()) {
	td := tc.td
	prev := td.State()
	td.SetState(collector.StateReduction)
	tc.rt.col.Event(td, collector.EventThrBeginReduction)
	tc.enterGeneratedLock(&tc.team.reduction, "reduction", collector.StateCriticalWait,
		collector.EventThrBeginCtwt, collector.EventThrEndCtwt)
	update()
	tc.team.reduction.Release()
	tc.rt.col.Event(td, collector.EventThrEndReduction)
	td.SetState(prev)
}

// redEntry is one pending typed-reduction deposit: the shared target
// (exactly one of i64/f64 is set) and the value accumulated locally
// since the last barrier.
type redEntry struct {
	i64 *int64
	f64 *float64
	iv  int64
	fv  float64
}

// redSlot is one thread's reduction deposit slot, padded so deposits
// never share a cache line across threads. The owning thread is the
// only writer between barriers; the barrier's releasing thread reads
// and clears every slot while the team is quiescent (flushReductions).
// The first int64 and float64 targets live inline — a reduction loop
// almost always accumulates into one shared variable, so the hot
// deposit is a pointer compare and an add; further targets overflow
// into the more slice.
type redSlot struct {
	i64  *int64
	iv   int64
	f64  *float64
	fv   float64
	more []redEntry
	_    [2*cacheLinePad - 56]byte
}

func (tc *ThreadCtx) depositInt64(p *int64, v int64) {
	s := &tc.team.red[tc.id]
	if s.i64 == p {
		s.iv += v
		return
	}
	if s.i64 == nil {
		s.i64, s.iv = p, v
		if !tc.team.redPending.Load() {
			tc.team.redPending.Store(true)
		}
		return
	}
	for i := range s.more {
		if s.more[i].i64 == p {
			s.more[i].iv += v
			return
		}
	}
	s.more = append(s.more, redEntry{i64: p, iv: v})
}

func (tc *ThreadCtx) depositFloat64(p *float64, v float64) {
	s := &tc.team.red[tc.id]
	if s.f64 == p {
		s.fv += v
		return
	}
	if s.f64 == nil {
		s.f64, s.fv = p, v
		if !tc.team.redPending.Load() {
			tc.team.redPending.Store(true)
		}
		return
	}
	for i := range s.more {
		if s.more[i].f64 == p {
			s.more[i].fv += v
			return
		}
	}
	s.more = append(s.more, redEntry{f64: p, fv: v})
}

// ReduceFloat64 accumulates local into *shared. The deposit goes to
// the thread's padded reduction slot and is combined into *shared by
// the releasing thread of the team's next barrier (the combining-tree
// root for large teams), so the common path takes no lock and touches
// no shared cache line. Per OpenMP reduction semantics the combined
// value is visible after that barrier — the implicit barrier ending
// the region at the latest. The wait state, reduction state and
// begin/end reduction events are identical to the locked path.
func (tc *ThreadCtx) ReduceFloat64(shared *float64, local float64) {
	td := tc.td
	prev := td.State()
	td.SetState(collector.StateReduction)
	tc.rt.col.Event(td, collector.EventThrBeginReduction)
	if tc.team.size == 1 {
		*shared += local
	} else {
		tc.depositFloat64(shared, local)
	}
	tc.rt.col.Event(td, collector.EventThrEndReduction)
	td.SetState(prev)
}

// ReduceInt64 accumulates local into *shared via the same lock-free
// combining path as ReduceFloat64.
func (tc *ThreadCtx) ReduceInt64(shared *int64, local int64) {
	td := tc.td
	prev := td.State()
	td.SetState(collector.StateReduction)
	tc.rt.col.Event(td, collector.EventThrBeginReduction)
	if tc.team.size == 1 {
		*shared += local
	} else {
		tc.depositInt64(shared, local)
	}
	tc.rt.col.Event(td, collector.EventThrEndReduction)
	td.SetState(prev)
}

// AtomicAddInt64 performs an atomic update of *addr. With
// Config.AtomicEvents the runtime tracks THR_ATWT_STATE and the atomic
// wait events when the first update attempt fails — the extension the
// paper declined to implement for overhead reasons (§IV-C.7).
func (tc *ThreadCtx) AtomicAddInt64(addr *int64, delta int64) {
	// First attempt: a single CAS, the uncontended fast path.
	old := atomic.LoadInt64(addr)
	if atomic.CompareAndSwapInt64(addr, old, old+delta) {
		return
	}
	tc.atomicWaitBegin()
	for {
		old = atomic.LoadInt64(addr)
		if atomic.CompareAndSwapInt64(addr, old, old+delta) {
			break
		}
	}
	tc.atomicWaitEnd()
}

// AtomicFloat64 is a float64 updated with compare-and-swap loops on
// its bit pattern, the translation OpenMP atomics get for
// floating-point targets without native atomic float support.
type AtomicFloat64 struct {
	bits atomic.Uint64
}

// Load returns the current value.
func (a *AtomicFloat64) Load() float64 { return math.Float64frombits(a.bits.Load()) }

// Store sets the value unconditionally.
func (a *AtomicFloat64) Store(v float64) { a.bits.Store(math.Float64bits(v)) }

// AtomicAddFloat64 atomically adds delta to a, with optional atomic
// wait tracking on contention.
func (tc *ThreadCtx) AtomicAddFloat64(a *AtomicFloat64, delta float64) {
	old := a.bits.Load()
	if a.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
		return
	}
	tc.atomicWaitBegin()
	for {
		old = a.bits.Load()
		if a.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			break
		}
	}
	tc.atomicWaitEnd()
}

func (tc *ThreadCtx) atomicWaitBegin() {
	if !tc.rt.cfg.AtomicEvents {
		return
	}
	tc.td.EnterWait(collector.StateAtomicWait)
	tc.rt.col.Event(tc.td, collector.EventThrBeginAtwt)
}

func (tc *ThreadCtx) atomicWaitEnd() {
	if !tc.rt.cfg.AtomicEvents {
		return
	}
	tc.rt.col.Event(tc.td, collector.EventThrEndAtwt)
	tc.td.SetState(collector.StateWorking)
}
