package omp

import (
	"strings"
	"sync/atomic"
	"testing"
)

func expectRegionPanic(t *testing.T, wantSub string, fn func()) *RegionPanic {
	t.Helper()
	defer func() {
		t.Helper()
		r := recover()
		if r == nil {
			t.Fatal("no panic propagated to the master")
		}
		rp, ok := r.(*RegionPanic)
		if !ok {
			t.Fatalf("panic value %T, want *RegionPanic", r)
		}
		if wantSub != "" && !strings.Contains(rp.Error(), wantSub) {
			t.Errorf("panic message %q missing %q", rp.Error(), wantSub)
		}
	}()
	fn()
	return nil
}

func TestPanicOnMasterPropagates(t *testing.T) {
	r := newRT(t, Config{NumThreads: 4})
	expectRegionPanic(t, "boom", func() {
		r.Parallel(func(tc *ThreadCtx) {
			if tc.ThreadNum() == 0 {
				panic("boom")
			}
		})
	})
	// The runtime must remain usable afterwards.
	var ok atomic.Int32
	r.Parallel(func(tc *ThreadCtx) { ok.Add(1) })
	if ok.Load() != 4 {
		t.Errorf("region after panic ran %d threads, want 4", ok.Load())
	}
}

func TestPanicOnSlavePropagatesToMaster(t *testing.T) {
	r := newRT(t, Config{NumThreads: 4})
	expectRegionPanic(t, "thread 2", func() {
		r.Parallel(func(tc *ThreadCtx) {
			if tc.ThreadNum() == 2 {
				panic("slave exploded")
			}
		})
	})
	var ok atomic.Int32
	r.Parallel(func(tc *ThreadCtx) { ok.Add(1) })
	if ok.Load() != 4 {
		t.Errorf("region after slave panic ran %d threads", ok.Load())
	}
}

func TestPanicMidWorksharingDoesNotDeadlock(t *testing.T) {
	// A thread panicking before a loop's implicit barrier must not
	// leave the rest of the team stuck in that barrier.
	r := newRT(t, Config{NumThreads: 4})
	expectRegionPanic(t, "", func() {
		r.Parallel(func(tc *ThreadCtx) {
			tc.For(16, func(i int) {
				if tc.ThreadNum() == 1 && i >= 4 {
					panic("mid-loop")
				}
			})
			tc.Barrier()
			tc.For(16, func(int) {})
		})
	})
	var ok atomic.Int32
	r.Parallel(func(tc *ThreadCtx) { ok.Add(1) })
	if ok.Load() != 4 {
		t.Errorf("runtime unusable after mid-loop panic: %d", ok.Load())
	}
}

func TestPanicInTaskPropagates(t *testing.T) {
	r := newRT(t, Config{NumThreads: 2})
	expectRegionPanic(t, "task boom", func() {
		r.Parallel(func(tc *ThreadCtx) {
			tc.Master(func() {
				tc.Task(func(*ThreadCtx) { panic("task boom") })
				tc.Taskwait() // must not deadlock on the dead child
			})
		})
	})
}

func TestPanicInSpinBarrierRegion(t *testing.T) {
	r := newRT(t, Config{NumThreads: 4, SpinBarrier: true})
	expectRegionPanic(t, "", func() {
		r.Parallel(func(tc *ThreadCtx) {
			if tc.ThreadNum() == 3 {
				panic("spin")
			}
			tc.Barrier()
		})
	})
}

func TestPanicInNestedRegion(t *testing.T) {
	r := newRT(t, Config{NumThreads: 2, Nested: true})
	expectRegionPanic(t, "", func() {
		r.Parallel(func(tc *ThreadCtx) {
			if tc.ThreadNum() == 0 {
				tc.Parallel(2, func(in *ThreadCtx) {
					if in.ThreadNum() == 1 {
						panic("nested slave")
					}
				})
			}
		})
	})
}

func TestRegionPanicError(t *testing.T) {
	p := &RegionPanic{Thread: 3, Value: "v"}
	if !strings.Contains(p.Error(), "thread 3") || !strings.Contains(p.Error(), "v") {
		t.Errorf("message %q", p.Error())
	}
}
