// Package mpi is an in-process message-passing substrate for the
// multi-zone hybrid benchmarks (NPB3.2-MZ-MPI in the paper). Ranks are
// goroutine groups inside one process: each rank runs its own OpenMP
// runtime, as a real MPI+OpenMP process owns its own OpenMP runtime
// library instance. The subset implemented — point-to-point send and
// receive with tag matching, barrier, broadcast, reduce, allreduce and
// gather — is what the multi-zone boundary exchange needs.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"goomp/internal/super"
)

// AnyTag matches any message tag in Recv.
const AnyTag = -1

// AnySource matches any sending rank in Recv.
const AnySource = -1

type message struct {
	src  int
	tag  int
	data []float64
}

// mailbox is the per-destination message store with MPI-style
// (source, tag) matching.
//
// Wakeup invariant: put must Broadcast, never Signal. Several
// receivers with different (source, tag) filters can block on one
// mailbox — the boundary exchange posts AnySource receives while a
// collective waits on a reserved tag — and a Signal could wake only a
// receiver whose filter the new message does not match, which would
// park again and strand the matching receiver forever (a lost
// wakeup). Broadcast wakes every filter; non-matching receivers
// re-scan and re-park. TestRecvInterleavedWildcards pins this down.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.pending = append(m.pending, msg)
	m.cond.Broadcast()
	m.mu.Unlock()
	if s := super.Enabled(); s != nil {
		s.Note() // message delivery is forward progress
	}
}

// WorldFailedError is the poison a failed rank leaves behind: every
// rank blocked in Recv, Barrier or a collective is released by
// panicking with the same *WorldFailedError, and World.Run re-raises
// it on the caller once all rank goroutines have unwound.
type WorldFailedError struct {
	Rank  int // the rank whose body panicked first
	Panic any // the recovered panic value
}

func (e *WorldFailedError) Error() string {
	return fmt.Sprintf("mpi: rank %d failed: %v", e.Rank, e.Panic)
}

// worldSeq numbers worlds so supervision labels stay unique when
// several worlds coexist in one process.
var worldSeq atomic.Uint64

// faultHook lets the fault-injection harness drop or delay messages on
// a (src, dst, tag) edge. A nil hook costs one atomic load per Send.
type faultHook func(src, dst, tag int) (drop bool, delay time.Duration)

// World is an MPI communicator universe of a fixed number of ranks.
type World struct {
	size  int
	seq   uint64
	boxes []*mailbox

	failed atomic.Pointer[WorldFailedError]
	fault  atomic.Pointer[faultHook]

	bmu    sync.Mutex
	bcond  *sync.Cond
	bcount int
	bsense bool
}

// NewWorld creates a world of size ranks.
func NewWorld(size int) *World {
	if size < 1 {
		panic("mpi: world size must be positive")
	}
	w := &World{size: size, seq: worldSeq.Add(1), boxes: make([]*mailbox, size)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	w.bcond = sync.NewCond(&w.bmu)
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// SetFaultHook installs (or clears, with nil) a message fault hook for
// chaos testing: Send consults it and drops the message or defers its
// delivery. Not for production use.
func (w *World) SetFaultHook(h func(src, dst, tag int) (drop bool, delay time.Duration)) {
	if h == nil {
		w.fault.Store(nil)
		return
	}
	fh := faultHook(h)
	w.fault.Store(&fh)
}

// Err returns the world's failure, or nil while all ranks are healthy.
func (w *World) Err() *WorldFailedError { return w.failed.Load() }

// Run starts one goroutine per rank executing fn and returns when all
// ranks finish. It is the mpirun of this substrate.
//
// A rank body that panics no longer strands its peers: the panic is
// recovered at the rank boundary, the world is poisoned, and every
// rank blocked in Recv, Barrier or a collective is released by
// panicking with a *WorldFailedError naming the failed rank. Once all
// rank goroutines have unwound, Run re-raises that error on the
// caller.
func (w *World) Run(fn func(c *Comm)) {
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				if wf, ok := r.(*WorldFailedError); ok && wf == w.failed.Load() {
					return // a waiter released by the poison; already recorded
				}
				w.poison(rank, r)
			}()
			fn(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	if err := w.failed.Load(); err != nil {
		panic(err)
	}
}

// poison records the first failure and wakes every blocked rank so it
// can observe the failure and unwind.
func (w *World) poison(rank int, val any) {
	w.failed.CompareAndSwap(nil, &WorldFailedError{Rank: rank, Panic: val})
	for _, m := range w.boxes {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	}
	w.bmu.Lock()
	w.bcond.Broadcast()
	w.bmu.Unlock()
}

// Comm is one rank's communicator handle.
type Comm struct {
	world  *World
	rank   int
	slabel string // lazily cached hang-supervision label
}

// superWho returns the rank's supervision label ("mpi1 rank 2"); the
// world sequence number keeps labels unique across worlds.
func (c *Comm) superWho() string {
	if c.slabel == "" {
		c.slabel = fmt.Sprintf("mpi%d rank %d", c.world.seq, c.rank)
	}
	return c.slabel
}

// Rank returns this rank's index.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.world.size }

// Send delivers a copy of data to dst with the given tag. It is
// buffered (never blocks), like an MPI_Send small enough for eager
// delivery.
func (c *Comm) Send(dst, tag int, data []float64) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	msg := message{src: c.rank, tag: tag, data: cp}
	box := c.world.boxes[dst]
	if h := c.world.fault.Load(); h != nil {
		drop, delay := (*h)(c.rank, dst, tag)
		if drop {
			return
		}
		if delay > 0 {
			time.AfterFunc(delay, func() { box.put(msg) })
			return
		}
	}
	box.put(msg)
}

// Recv blocks until a message matching (src, tag) arrives and returns
// its payload and actual source. Use AnySource/AnyTag as wildcards.
// If a rank fails while we wait, Recv panics with the world's
// *WorldFailedError instead of blocking forever.
func (c *Comm) Recv(src, tag int) ([]float64, int) {
	m := c.world.boxes[c.rank]
	m.mu.Lock()
	defer m.mu.Unlock()
	var s *super.Supervisor
	var tok uint64
	defer func() {
		if s != nil {
			s.EndWait(tok) // also clears the record when poison unwinds us
		}
	}()
	for {
		for i, msg := range m.pending {
			if (src == AnySource || msg.src == src) && (tag == AnyTag || msg.tag == tag) {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				return msg.data, msg.src
			}
		}
		if err := c.world.failed.Load(); err != nil {
			panic(err)
		}
		if s == nil {
			if s = super.Enabled(); s != nil {
				tok = s.BeginWait(c.superWho(), -1, super.Resource{
					Kind:   super.ResMsg,
					ID:     uint64(uintptr(unsafe.Pointer(m))),
					Detail: fmt.Sprintf("src=%s tag=%s", wildcard(src), wildcard(tag)),
				}, "")
			}
		}
		m.cond.Wait()
	}
}

// wildcard renders a Recv filter component for diagnostics.
func wildcard(v int) string {
	if v < 0 {
		return "any"
	}
	return fmt.Sprintf("%d", v)
}

// Sendrecv exchanges data with a partner rank in one deadlock-free
// step.
func (c *Comm) Sendrecv(dst, sendTag int, data []float64, src, recvTag int) ([]float64, int) {
	c.Send(dst, sendTag, data)
	return c.Recv(src, recvTag)
}

// Barrier blocks until every rank has entered it (sense-reversing
// central barrier). If a rank fails while we wait, Barrier panics
// with the world's *WorldFailedError instead of blocking forever.
func (c *Comm) Barrier() {
	w := c.world
	w.bmu.Lock()
	defer w.bmu.Unlock()
	if err := w.failed.Load(); err != nil {
		panic(err)
	}
	sense := w.bsense
	w.bcount++
	if w.bcount == w.size {
		w.bcount = 0
		w.bsense = !sense
		w.bcond.Broadcast()
		if s := super.Enabled(); s != nil {
			s.Note() // a completed barrier episode is forward progress
		}
		return
	}
	s := super.Enabled()
	var tok uint64
	if s != nil {
		tok = s.BeginWait(c.superWho(), -1, super.Resource{
			Kind:   super.ResMPIBar,
			ID:     w.seq,
			Detail: fmt.Sprintf("world of %d", w.size),
		}, "")
		defer s.EndWait(tok)
	}
	for w.bsense == sense {
		if err := w.failed.Load(); err != nil {
			panic(err)
		}
		w.bcond.Wait()
	}
}

// Op is a reduction operator.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

func (op Op) apply(dst, src []float64) {
	for i := range dst {
		switch op {
		case OpSum:
			dst[i] += src[i]
		case OpMax:
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		case OpMin:
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	}
}

// reserved tag space for collectives, above user tags.
const (
	tagBcast = 1 << 20
	tagGath  = 2 << 20
	tagRed   = 3 << 20
)

// Bcast distributes root's data to every rank and returns each rank's
// copy.
func (c *Comm) Bcast(root int, data []float64) []float64 {
	if c.rank == root {
		for r := 0; r < c.world.size; r++ {
			if r != root {
				c.Send(r, tagBcast, data)
			}
		}
		cp := make([]float64, len(data))
		copy(cp, data)
		return cp
	}
	got, _ := c.Recv(root, tagBcast)
	return got
}

// Gather collects each rank's contribution at root; root receives a
// slice indexed by rank, other ranks receive nil.
func (c *Comm) Gather(root int, data []float64) [][]float64 {
	if c.rank != root {
		c.Send(root, tagGath+c.rank, data)
		return nil
	}
	out := make([][]float64, c.world.size)
	cp := make([]float64, len(data))
	copy(cp, data)
	out[root] = cp
	for r := 0; r < c.world.size; r++ {
		if r == root {
			continue
		}
		got, _ := c.Recv(r, tagGath+r)
		out[r] = got
	}
	return out
}

// Reduce combines every rank's data element-wise at root with op; root
// receives the result, others nil.
func (c *Comm) Reduce(root int, op Op, data []float64) []float64 {
	if c.rank != root {
		c.Send(root, tagRed+c.rank, data)
		return nil
	}
	acc := make([]float64, len(data))
	copy(acc, data)
	for r := 0; r < c.world.size; r++ {
		if r == root {
			continue
		}
		got, _ := c.Recv(r, tagRed+r)
		op.apply(acc, got)
	}
	return acc
}

// Allreduce combines every rank's data with op and returns the result
// on every rank (reduce to rank 0, broadcast back).
func (c *Comm) Allreduce(op Op, data []float64) []float64 {
	acc := c.Reduce(0, op, data)
	if c.rank == 0 {
		return c.Bcast(0, acc)
	}
	return c.Bcast(0, nil)
}

// AllreduceScalar is Allreduce for a single value.
func (c *Comm) AllreduceScalar(op Op, v float64) float64 {
	return c.Allreduce(op, []float64{v})[0]
}
