// Package mpi is an in-process message-passing substrate for the
// multi-zone hybrid benchmarks (NPB3.2-MZ-MPI in the paper). Ranks are
// goroutine groups inside one process: each rank runs its own OpenMP
// runtime, as a real MPI+OpenMP process owns its own OpenMP runtime
// library instance. The subset implemented — point-to-point send and
// receive with tag matching, barrier, broadcast, reduce, allreduce and
// gather — is what the multi-zone boundary exchange needs.
package mpi

import (
	"fmt"
	"sync"
)

// AnyTag matches any message tag in Recv.
const AnyTag = -1

// AnySource matches any sending rank in Recv.
const AnySource = -1

type message struct {
	src  int
	tag  int
	data []float64
}

// mailbox is the per-destination message store with MPI-style
// (source, tag) matching.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.pending = append(m.pending, msg)
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (m *mailbox) get(src, tag int) message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.pending {
			if (src == AnySource || msg.src == src) && (tag == AnyTag || msg.tag == tag) {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				return msg
			}
		}
		m.cond.Wait()
	}
}

// World is an MPI communicator universe of a fixed number of ranks.
type World struct {
	size  int
	boxes []*mailbox

	bmu    sync.Mutex
	bcond  *sync.Cond
	bcount int
	bsense bool
}

// NewWorld creates a world of size ranks.
func NewWorld(size int) *World {
	if size < 1 {
		panic("mpi: world size must be positive")
	}
	w := &World{size: size, boxes: make([]*mailbox, size)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	w.bcond = sync.NewCond(&w.bmu)
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Run starts one goroutine per rank executing fn and returns when all
// ranks finish. It is the mpirun of this substrate.
func (w *World) Run(fn func(c *Comm)) {
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fn(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
}

// Comm is one rank's communicator handle.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this rank's index.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.world.size }

// Send delivers a copy of data to dst with the given tag. It is
// buffered (never blocks), like an MPI_Send small enough for eager
// delivery.
func (c *Comm) Send(dst, tag int, data []float64) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	c.world.boxes[dst].put(message{src: c.rank, tag: tag, data: cp})
}

// Recv blocks until a message matching (src, tag) arrives and returns
// its payload and actual source. Use AnySource/AnyTag as wildcards.
func (c *Comm) Recv(src, tag int) ([]float64, int) {
	msg := c.world.boxes[c.rank].get(src, tag)
	return msg.data, msg.src
}

// Sendrecv exchanges data with a partner rank in one deadlock-free
// step.
func (c *Comm) Sendrecv(dst, sendTag int, data []float64, src, recvTag int) ([]float64, int) {
	c.Send(dst, sendTag, data)
	return c.Recv(src, recvTag)
}

// Barrier blocks until every rank has entered it (sense-reversing
// central barrier).
func (c *Comm) Barrier() {
	w := c.world
	w.bmu.Lock()
	sense := w.bsense
	w.bcount++
	if w.bcount == w.size {
		w.bcount = 0
		w.bsense = !sense
		w.bcond.Broadcast()
		w.bmu.Unlock()
		return
	}
	for w.bsense == sense {
		w.bcond.Wait()
	}
	w.bmu.Unlock()
}

// Op is a reduction operator.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

func (op Op) apply(dst, src []float64) {
	for i := range dst {
		switch op {
		case OpSum:
			dst[i] += src[i]
		case OpMax:
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		case OpMin:
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	}
}

// reserved tag space for collectives, above user tags.
const (
	tagBcast = 1 << 20
	tagGath  = 2 << 20
	tagRed   = 3 << 20
)

// Bcast distributes root's data to every rank and returns each rank's
// copy.
func (c *Comm) Bcast(root int, data []float64) []float64 {
	if c.rank == root {
		for r := 0; r < c.world.size; r++ {
			if r != root {
				c.Send(r, tagBcast, data)
			}
		}
		cp := make([]float64, len(data))
		copy(cp, data)
		return cp
	}
	got, _ := c.Recv(root, tagBcast)
	return got
}

// Gather collects each rank's contribution at root; root receives a
// slice indexed by rank, other ranks receive nil.
func (c *Comm) Gather(root int, data []float64) [][]float64 {
	if c.rank != root {
		c.Send(root, tagGath+c.rank, data)
		return nil
	}
	out := make([][]float64, c.world.size)
	cp := make([]float64, len(data))
	copy(cp, data)
	out[root] = cp
	for r := 0; r < c.world.size; r++ {
		if r == root {
			continue
		}
		got, _ := c.Recv(r, tagGath+r)
		out[r] = got
	}
	return out
}

// Reduce combines every rank's data element-wise at root with op; root
// receives the result, others nil.
func (c *Comm) Reduce(root int, op Op, data []float64) []float64 {
	if c.rank != root {
		c.Send(root, tagRed+c.rank, data)
		return nil
	}
	acc := make([]float64, len(data))
	copy(acc, data)
	for r := 0; r < c.world.size; r++ {
		if r == root {
			continue
		}
		got, _ := c.Recv(r, tagRed+r)
		op.apply(acc, got)
	}
	return acc
}

// Allreduce combines every rank's data with op and returns the result
// on every rank (reduce to rank 0, broadcast back).
func (c *Comm) Allreduce(op Op, data []float64) []float64 {
	acc := c.Reduce(0, op, data)
	if c.rank == 0 {
		return c.Bcast(0, acc)
	}
	return c.Bcast(0, nil)
}

// AllreduceScalar is Allreduce for a single value.
func (c *Comm) AllreduceScalar(op Op, v float64) float64 {
	return c.Allreduce(op, []float64{v})[0]
}
