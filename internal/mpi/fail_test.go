package mpi

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// runWithDeadline runs fn and fails the test if it does not return
// within d — the guard that turns a reintroduced untimed wait into a
// fast failure instead of a hung test binary.
func runWithDeadline(t *testing.T, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("mpi world wedged: deadline exceeded")
	}
}

// A rank that panics must not strand peers blocked in Recv: the world
// is poisoned and Run re-raises a WorldFailedError naming the rank.
func TestRankPanicReleasesRecvWaiters(t *testing.T) {
	runWithDeadline(t, 10*time.Second, func() {
		w := NewWorld(4)
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("Run returned without re-raising the rank failure")
			}
			wf, ok := r.(*WorldFailedError)
			if !ok {
				t.Fatalf("Run panicked with %T (%v), want *WorldFailedError", r, r)
			}
			if wf.Rank != 2 {
				t.Fatalf("WorldFailedError names rank %d, want 2", wf.Rank)
			}
			if wf.Panic != "boom" {
				t.Fatalf("WorldFailedError.Panic = %v, want boom", wf.Panic)
			}
		}()
		w.Run(func(c *Comm) {
			if c.Rank() == 2 {
				panic("boom")
			}
			// Peers block on a message only rank 2 would send.
			c.Recv(2, 99)
		})
	})
}

// Same for ranks blocked in Barrier: a no-show rank must not hang it.
func TestRankPanicReleasesBarrierWaiters(t *testing.T) {
	runWithDeadline(t, 10*time.Second, func() {
		w := NewWorld(3)
		var released atomic.Int32
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("Run returned without re-raising the rank failure")
			}
			if released.Load() != 2 {
				t.Fatalf("%d ranks observed the poison, want 2", released.Load())
			}
		}()
		w.Run(func(c *Comm) {
			if c.Rank() == 0 {
				panic(errors.New("rank 0 dies before the barrier"))
			}
			defer func() {
				if r := recover(); r != nil {
					released.Add(1)
					panic(r) // unwind through Run's rank boundary
				}
			}()
			c.Barrier()
		})
	})
}

// Err is nil on a healthy world and set after a failure.
func TestWorldErr(t *testing.T) {
	runWithDeadline(t, 10*time.Second, func() {
		w := NewWorld(2)
		w.Run(func(c *Comm) { c.Barrier() })
		if w.Err() != nil {
			t.Fatalf("healthy world has Err %v", w.Err())
		}
		func() {
			defer func() { recover() }()
			w.Run(func(c *Comm) {
				if c.Rank() == 1 {
					panic("late failure")
				}
				c.Recv(1, 7)
			})
		}()
		if w.Err() == nil || w.Err().Rank != 1 {
			t.Fatalf("Err after failure = %v, want rank 1", w.Err())
		}
	})
}

// Wakeup-semantics regression (the Broadcast audit): interleaved
// receivers with different wildcard filters on one mailbox must all
// complete. With Signal instead of Broadcast in put, a message could
// wake only a non-matching receiver and strand the matching one.
func TestRecvInterleavedWildcards(t *testing.T) {
	const rounds = 200
	runWithDeadline(t, 30*time.Second, func() {
		for i := 0; i < rounds; i++ {
			w := NewWorld(4)
			w.Run(func(c *Comm) {
				switch c.Rank() {
				case 0:
					// Two concurrent receivers with disjoint filters on
					// one mailbox: (AnySource, 7) only matches rank 1's
					// message, (2, AnyTag) only matches rank 2's. Each
					// arriving message wakes both; a Signal could wake
					// only the wrong one.
					done := make(chan int, 2)
					go func() {
						data, _ := c.Recv(AnySource, 7) // tag filter only
						done <- int(data[0])
					}()
					go func() {
						data, _ := c.Recv(2, AnyTag) // source filter only
						done <- int(data[0])
					}()
					sum := <-done + <-done
					if sum != 3 {
						panic("filtered receivers got the wrong messages")
					}
					// The fully wild receiver picks up the leftover
					// (rank 3, tag 9) the filters ignored.
					data, src := c.Recv(AnySource, AnyTag)
					if src != 3 || data[0] != 3 {
						panic("wildcard receiver got the wrong leftover")
					}
				case 1:
					c.Send(0, 7, []float64{1})
				case 2:
					c.Send(0, 8, []float64{2})
				case 3:
					c.Send(0, 9, []float64{3})
				}
			})
		}
	})
}
