package mpi

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	var got []float64
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			data, src := c.Recv(0, 7)
			if src != 0 {
				t.Errorf("src = %d, want 0", src)
			}
			got = data
		}
	})
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("got %v", got)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf)
			buf[0] = -1 // mutation after send must not be visible
		} else {
			data, _ := c.Recv(0, 0)
			if data[0] != 42 {
				t.Errorf("payload = %v, want 42 (send must copy)", data[0])
			}
		}
	})
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1})
			c.Send(1, 2, []float64{2})
		} else {
			// Receive tag 2 first although tag 1 arrived first.
			d2, _ := c.Recv(0, 2)
			d1, _ := c.Recv(0, 1)
			if d2[0] != 2 || d1[0] != 1 {
				t.Errorf("tag matching failed: %v %v", d1, d2)
			}
		}
	})
}

func TestRecvWildcards(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				data, src := c.Recv(AnySource, AnyTag)
				seen[src] = true
				if data[0] != float64(src) {
					t.Errorf("from %d got %v", src, data)
				}
			}
			if !seen[1] || !seen[2] {
				t.Errorf("sources seen: %v", seen)
			}
		default:
			c.Send(0, 5+c.Rank(), []float64{float64(c.Rank())})
		}
	})
}

func TestSendInvalidRankPanics(t *testing.T) {
	w := NewWorld(1)
	w.Run(func(c *Comm) {
		defer func() {
			if recover() == nil {
				t.Error("send to invalid rank did not panic")
			}
		}()
		c.Send(5, 0, nil)
	})
}

func TestSendrecvRingNoDeadlock(t *testing.T) {
	const p = 5
	w := NewWorld(p)
	sums := make([]float64, p)
	w.Run(func(c *Comm) {
		right := (c.Rank() + 1) % p
		left := (c.Rank() + p - 1) % p
		got, src := c.Sendrecv(right, 9, []float64{float64(c.Rank())}, left, 9)
		if src != left {
			t.Errorf("rank %d: src = %d, want %d", c.Rank(), src, left)
		}
		sums[c.Rank()] = got[0]
	})
	for r := 0; r < p; r++ {
		want := float64((r + p - 1) % p)
		if sums[r] != want {
			t.Errorf("rank %d received %v, want %v", r, sums[r], want)
		}
	}
}

func TestBarrierPhases(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	var counter int64
	errs := make(chan string, p)
	w.Run(func(c *Comm) {
		for phase := 1; phase <= 10; phase++ {
			w.bmu.Lock() // reuse barrier mutex to make the add atomic
			counter++
			w.bmu.Unlock()
			c.Barrier()
			w.bmu.Lock()
			v := counter
			w.bmu.Unlock()
			if v != int64(p*phase) {
				select {
				case errs <- "barrier phase tear":
				default:
				}
			}
			c.Barrier()
		}
	})
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}

func TestBcast(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	got := make([][]float64, p)
	w.Run(func(c *Comm) {
		var data []float64
		if c.Rank() == 2 {
			data = []float64{3.5, -1}
		}
		got[c.Rank()] = c.Bcast(2, data)
	})
	for r := 0; r < p; r++ {
		if len(got[r]) != 2 || got[r][0] != 3.5 || got[r][1] != -1 {
			t.Errorf("rank %d got %v", r, got[r])
		}
	}
}

func TestGather(t *testing.T) {
	const p = 3
	w := NewWorld(p)
	var rootView [][]float64
	w.Run(func(c *Comm) {
		out := c.Gather(0, []float64{float64(c.Rank() * 10)})
		if c.Rank() == 0 {
			rootView = out
		} else if out != nil {
			t.Errorf("rank %d got non-nil gather result", c.Rank())
		}
	})
	for r := 0; r < p; r++ {
		if rootView[r][0] != float64(r*10) {
			t.Errorf("gathered[%d] = %v", r, rootView[r])
		}
	}
}

func TestReduceOps(t *testing.T) {
	cases := []struct {
		op   Op
		want []float64
	}{
		{OpSum, []float64{0 + 1 + 2 + 3, 3 * 4}},
		{OpMax, []float64{3, 3}},
		{OpMin, []float64{0, 3}},
	}
	for _, cse := range cases {
		w := NewWorld(4)
		var got []float64
		w.Run(func(c *Comm) {
			out := c.Reduce(0, cse.op, []float64{float64(c.Rank()), 3})
			if c.Rank() == 0 {
				got = out
			}
		})
		if got[0] != cse.want[0] || got[1] != cse.want[1] {
			t.Errorf("op %v: got %v, want %v", cse.op, got, cse.want)
		}
	}
}

func TestAllreduceEveryRankSeesResult(t *testing.T) {
	const p = 5
	w := NewWorld(p)
	got := make([]float64, p)
	w.Run(func(c *Comm) {
		got[c.Rank()] = c.AllreduceScalar(OpSum, float64(c.Rank()+1))
	})
	want := float64(p * (p + 1) / 2)
	for r := 0; r < p; r++ {
		if got[r] != want {
			t.Errorf("rank %d allreduce = %v, want %v", r, got[r], want)
		}
	}
}

// Property: allreduce(sum) equals the serial sum for arbitrary vectors
// and world sizes.
func TestAllreduceProperty(t *testing.T) {
	f := func(vals []float64, pRaw uint8) bool {
		p := 1 + int(pRaw%6)
		if len(vals) > 32 {
			vals = vals[:32]
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 1
			}
		}
		w := NewWorld(p)
		results := make([][]float64, p)
		w.Run(func(c *Comm) {
			contrib := make([]float64, len(vals))
			copy(contrib, vals)
			results[c.Rank()] = c.Allreduce(OpSum, contrib)
		})
		for r := 0; r < p; r++ {
			for i, v := range vals {
				want := v * float64(p)
				if math.Abs(results[r][i]-want) > 1e-9*math.Abs(want)+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWorldSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-size world did not panic")
		}
	}()
	NewWorld(0)
}
