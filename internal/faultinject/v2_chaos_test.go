package faultinject_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"goomp/internal/faultinject"
	"goomp/internal/ingest"
	"goomp/internal/omp"
	"goomp/internal/tool"
)

// The v2-encoding chaos regressions: the compact block format must
// survive exactly the same network and disk failures as v1, because
// the resend tail and the journal both carry the originally encoded
// bytes — a chunk is never re-encoded after it is staged, so a replay
// after any tear lands bit-for-bit what the local tee holds.

// requireV2Files asserts every trace file in dir opens with a v2 block
// — the run really exercised the new encoding, not a silent fallback.
func requireV2Files(t *testing.T, dir string) {
	t.Helper()
	files, _ := filepath.Glob(filepath.Join(dir, "trace.*.psxt"))
	if len(files) == 0 {
		t.Fatalf("no trace files in %s", dir)
	}
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(raw, []byte("PSX2")) {
			t.Errorf("%s does not start with a v2 block", path)
		}
	}
}

// TestChaosNetMidChunkDisconnectV2 is the reconnect-mid-chunk
// regression under v2+flate: a frame torn halfway onto the wire is
// resent whole from the retained originally-encoded bytes on the next
// connection, so the mirrored run directory stays byte-identical to
// the local tee — a re-encode (even a semantically equal one) would
// break the mirror because flate output is not canonical.
func TestChaosNetMidChunkDisconnectV2(t *testing.T) {
	srv, dataDir := startNetChaosServer(t)
	plan := faultinject.New(17)
	plan.TearConnFrame(1, 3) // the second data frame dies mid-write

	rt := omp.New(omp.Config{NumThreads: 2})
	defer rt.Close()
	localDir := t.TempDir()
	opts := tool.FullMeasurement()
	opts.StreamDir = localDir
	opts.IngestAddr = srv.Addr()
	opts.IngestRun = "torn-frame-v2"
	opts.TraceV2 = true
	opts.TraceCompress = true
	plan.Apply(&opts)
	tl, err := tool.AttachRuntime(rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, rt, 300)
	tl.Detach()

	rep := tl.Report()
	if plan.FiredCount(faultinject.KindConnTear) != 1 {
		t.Fatalf("frame tear fired %d times, want 1", plan.FiredCount(faultinject.KindConnTear))
	}
	if rep.IngestReconnects == 0 {
		t.Error("the sink never reconnected after the torn frame")
	}
	if rep.IngestDroppedChunks != 0 {
		t.Errorf("%d chunks dropped across a torn frame", rep.IngestDroppedChunks)
	}
	ri := waitRunDone(t, srv, "torn-frame-v2")
	if ri.Chunks != rep.IngestShippedChunks {
		t.Errorf("server landed %d chunks, client shipped %d", ri.Chunks, rep.IngestShippedChunks)
	}
	requireV2Files(t, localDir)
	requireByteIdentical(t, localDir, filepath.Join(dataDir, "torn-frame-v2"))
}

// TestChaosDiskCrashRestartMidChunkV2 re-runs the headline durability
// scenario with compressed v2 blocks: the daemon dies mid-write of a
// flate-compressed block, the restart replays the journal (whose CRCs
// cover the encoded on-disk bytes, so a torn compressed tail fails
// validation exactly like a torn v1 record run), and the durable sink
// resends the staged originals until the mirror is byte-identical.
func TestChaosDiskCrashRestartMidChunkV2(t *testing.T) {
	plan := faultinject.New(29)
	dataDir := t.TempDir()
	srv, err := ingest.Serve("127.0.0.1:0", ingest.Options{Dir: dataDir, FS: plan.IngestFS()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	addr := srv.Addr()

	killed := make(chan struct{})
	plan.SetOnCrash(func() {
		srv.Kill()
		close(killed)
	})
	plan.CrashOnWrite("trace.", 4) // the 4th trace-block write tears and the daemon dies

	rt := omp.New(omp.Config{NumThreads: 2})
	defer rt.Close()
	localDir := t.TempDir()
	opts := tool.FullMeasurement()
	opts.StreamDir = localDir
	opts.IngestAddr = addr
	opts.IngestRun = "crash-restart-v2"
	opts.IngestDurable = true
	opts.TraceV2 = true
	opts.TraceCompress = true
	tl, err := tool.AttachRuntime(rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, rt, 300)

	select {
	case <-killed:
	case <-time.After(10 * time.Second):
		t.Fatal("the crash write never fired: fewer than 4 blocks reached the server")
	}
	if got := plan.FiredCount(faultinject.KindCrashWrite); got != 1 {
		t.Fatalf("crash write fired %d times, want 1", got)
	}

	srv2 := restartIngest(t, addr, ingest.Options{Dir: dataDir, FS: plan.IngestFS()})
	if rec := srv2.Recovered(); rec.Salvaged == 0 {
		t.Errorf("restart recovered %d runs but salvaged none; a torn-tail run was on disk", rec.Runs)
	}

	runWorkload(t, rt, 200)
	tl.Detach()
	if err := tl.StreamError(); err != nil {
		t.Fatalf("stream error: %v", err)
	}

	rep := tl.Report()
	if rep.IngestReconnects == 0 {
		t.Error("the sink never reconnected across the daemon restart")
	}
	if rep.IngestDroppedChunks != 0 {
		t.Errorf("%d chunks dropped across a recoverable daemon crash", rep.IngestDroppedChunks)
	}
	ri := waitRunWithin(t, srv2, "crash-restart-v2", 15*time.Second)
	if !ri.Salvaged {
		t.Error("the recovered run is not marked salvaged")
	}
	if ri.Chunks != rep.IngestShippedChunks {
		t.Errorf("server landed %d chunks, client shipped %d", ri.Chunks, rep.IngestShippedChunks)
	}
	runDir := filepath.Join(dataDir, "crash-restart-v2")
	requireV2Files(t, localDir)
	requireByteIdentical(t, localDir, runDir)
	checkAccounting(t, rep, plan, parseStreamDir(t, localDir))
}
