package faultinject_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"goomp/internal/faultinject"
	"goomp/internal/ingest"
	"goomp/internal/omp"
	"goomp/internal/tool"
)

// The network-edge chaos suite drives the ingest sink through the
// failure modes a fleet actually serves up: a psxd that is dead before
// attach, one that dies mid-run, a slow link whose acks lag, and a
// connection dropped halfway through a frame. The invariants under
// every one of them: recording threads never block, Detach stays
// bounded, every lost chunk is counted exactly, and whenever the
// server has a copy of a file it is byte-identical to the local one.

// startNetChaosServer runs a real ingest server for the test.
func startNetChaosServer(t *testing.T) (*ingest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	srv, err := ingest.Serve("127.0.0.1:0", ingest.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, dir
}

// waitRunDone polls the registry until the run has landed its BYE.
func waitRunDone(t *testing.T, srv *ingest.Server, run string) ingest.RunInfo {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, ri := range srv.Runs() {
			if ri.ID == run && ri.Complete {
				return ri
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %q never completed; registry: %+v", run, srv.Runs())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// requireByteIdentical asserts the server's run directory mirrors the
// local stream directory file for file, byte for byte.
func requireByteIdentical(t *testing.T, localDir, runDir string) {
	t.Helper()
	entries, err := os.ReadDir(localDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no local stream files: %v", err)
	}
	for _, e := range entries {
		local, err := os.ReadFile(filepath.Join(localDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		remote, err := os.ReadFile(filepath.Join(runDir, e.Name()))
		if err != nil {
			t.Fatalf("server side of %s: %v", e.Name(), err)
		}
		if !bytes.Equal(local, remote) {
			t.Errorf("%s: server copy (%d bytes) differs from local (%d bytes)",
				e.Name(), len(remote), len(local))
		}
	}
	// The run dir additionally holds the durability journal and
	// manifest; only the trace files must mirror the local set.
	remote, err := os.ReadDir(runDir)
	if err != nil {
		t.Fatal(err)
	}
	traces := 0
	for _, e := range remote {
		if filepath.Ext(e.Name()) == ".psxt" {
			traces++
		}
	}
	if traces != len(entries) {
		t.Errorf("server run dir holds %d trace files, local %d", traces, len(entries))
	}
}

// runWorkload drives the instrumented runtime through regions parallel
// regions and bounds how long the workload itself may take — a sink
// that blocks a recording thread shows up here as a wall-clock blowup.
func runWorkload(t *testing.T, rt *omp.RT, regions int) {
	t.Helper()
	start := time.Now()
	for i := 0; i < regions; i++ {
		rt.Parallel(func(tc *omp.ThreadCtx) {})
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("workload took %v: the ingest sink is blocking recording threads", elapsed)
	}
}

// TestChaosNetDeadServerAtAttach points the sink at a server that
// never answers: every dial fails, forever. The workload and Detach
// must stay bounded, nothing ships, and every sample that entered the
// network path sits in an exact loss bucket.
func TestChaosNetDeadServerAtAttach(t *testing.T) {
	plan := faultinject.New(7)
	plan.FailDial(1 << 30) // the server is simply dead

	rt := omp.New(omp.Config{NumThreads: 2})
	defer rt.Close()
	opts := tool.FullMeasurement()
	opts.IngestAddr = "127.0.0.1:9" // never actually dialed
	opts.IngestRun = "dead-server"
	plan.Apply(&opts)
	tl, err := tool.AttachRuntime(rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, rt, 200)

	start := time.Now()
	tl.Detach()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Detach took %v with a dead server; the flush grace is not bounding it", elapsed)
	}

	rep := tl.Report()
	if rep.IngestShippedChunks != 0 {
		t.Errorf("%d chunks shipped to a server that never accepted a dial", rep.IngestShippedChunks)
	}
	if plan.FiredCount(faultinject.KindDialError) == 0 {
		t.Error("the dial fault never fired: the sink did not even try to connect")
	}
	var dispatched uint64
	for _, n := range rep.Events {
		dispatched += n
	}
	got := uint64(rep.Samples) + rep.Dropped + rep.IngestDroppedSamples + rep.StreamDiscardedSamples
	if got != dispatched {
		t.Errorf("accounting: in-memory %d + dropped %d + ingest-dropped %d + discarded %d = %d, want %d dispatched",
			rep.Samples, rep.Dropped, rep.IngestDroppedSamples, rep.StreamDiscardedSamples, got, dispatched)
	}
	if rep.IngestDroppedSamples == 0 {
		t.Error("a dead server dropped nothing: the loss buckets went unexercised")
	}
}

// TestChaosNetServerDeathMidRun cuts the first connection after a few
// frames: the server process is fine (it keeps the bytes it acked) but
// the link is gone. The sink must reconnect, learn the last accepted
// sequence, resend only the unacknowledged tail, and end with the
// server's run directory byte-identical to the local one.
func TestChaosNetServerDeathMidRun(t *testing.T) {
	srv, dataDir := startNetChaosServer(t)
	plan := faultinject.New(11)
	plan.CutConnAfterFrames(1, 4) // HELLO + 3 data frames, then dead

	rt := omp.New(omp.Config{NumThreads: 2})
	defer rt.Close()
	localDir := t.TempDir()
	opts := tool.FullMeasurement()
	opts.StreamDir = localDir
	opts.IngestAddr = srv.Addr()
	opts.IngestRun = "mid-run-death"
	plan.Apply(&opts)
	tl, err := tool.AttachRuntime(rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, rt, 300)
	tl.Detach()
	if err := tl.StreamError(); err != nil {
		t.Fatalf("stream error: %v", err)
	}

	rep := tl.Report()
	if plan.FiredCount(faultinject.KindConnCut) != 1 {
		t.Fatalf("connection cut fired %d times, want 1", plan.FiredCount(faultinject.KindConnCut))
	}
	if rep.IngestReconnects == 0 {
		t.Error("the sink never reconnected after the cut")
	}
	if rep.IngestDroppedChunks != 0 {
		t.Errorf("%d chunks dropped across a recoverable cut", rep.IngestDroppedChunks)
	}
	ri := waitRunDone(t, srv, "mid-run-death")
	if ri.Chunks != rep.IngestShippedChunks {
		t.Errorf("server landed %d chunks, client shipped %d", ri.Chunks, rep.IngestShippedChunks)
	}
	requireByteIdentical(t, localDir, filepath.Join(dataDir, "mid-run-death"))
	checkAccounting(t, rep, plan, parseStreamDir(t, localDir))
}

// TestChaosNetSlowLink lags every server response by 20ms. Nothing is
// lost on a slow link — delivery just takes longer — and the recording
// threads must not feel the latency at all.
func TestChaosNetSlowLink(t *testing.T) {
	srv, dataDir := startNetChaosServer(t)
	plan := faultinject.New(13)
	plan.DelayAcks(20 * time.Millisecond)

	rt := omp.New(omp.Config{NumThreads: 2})
	defer rt.Close()
	localDir := t.TempDir()
	opts := tool.FullMeasurement()
	opts.StreamDir = localDir
	opts.IngestAddr = srv.Addr()
	opts.IngestRun = "slow-link"
	plan.Apply(&opts)
	tl, err := tool.AttachRuntime(rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, rt, 300)
	tl.Detach()

	rep := tl.Report()
	if plan.FiredCount(faultinject.KindAckDelay) == 0 {
		t.Error("the ack delay never fired")
	}
	if rep.IngestDroppedChunks != 0 {
		t.Errorf("%d chunks dropped on a merely slow link", rep.IngestDroppedChunks)
	}
	if rep.IngestShippedChunks == 0 {
		t.Error("nothing shipped across the slow link")
	}
	ri := waitRunDone(t, srv, "slow-link")
	if ri.Chunks != rep.IngestShippedChunks {
		t.Errorf("server landed %d chunks, client shipped %d", ri.Chunks, rep.IngestShippedChunks)
	}
	requireByteIdentical(t, localDir, filepath.Join(dataDir, "slow-link"))
}

// TestChaosNetMidChunkDisconnect tears a frame halfway onto the wire
// and kills the connection: the server reads a torn frame it never
// acks, so the sink must resend that chunk whole on the next
// connection — the mirrored run directory proves no half-frame ever
// landed.
func TestChaosNetMidChunkDisconnect(t *testing.T) {
	srv, dataDir := startNetChaosServer(t)
	plan := faultinject.New(17)
	plan.TearConnFrame(1, 3) // the second data frame dies mid-write

	rt := omp.New(omp.Config{NumThreads: 2})
	defer rt.Close()
	localDir := t.TempDir()
	opts := tool.FullMeasurement()
	opts.StreamDir = localDir
	opts.IngestAddr = srv.Addr()
	opts.IngestRun = "torn-frame"
	plan.Apply(&opts)
	tl, err := tool.AttachRuntime(rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, rt, 300)
	tl.Detach()

	rep := tl.Report()
	if plan.FiredCount(faultinject.KindConnTear) != 1 {
		t.Fatalf("frame tear fired %d times, want 1", plan.FiredCount(faultinject.KindConnTear))
	}
	if rep.IngestReconnects == 0 {
		t.Error("the sink never reconnected after the torn frame")
	}
	if rep.IngestDroppedChunks != 0 {
		t.Errorf("%d chunks dropped across a torn frame", rep.IngestDroppedChunks)
	}
	ri := waitRunDone(t, srv, "torn-frame")
	if ri.Chunks != rep.IngestShippedChunks {
		t.Errorf("server landed %d chunks, client shipped %d", ri.Chunks, rep.IngestShippedChunks)
	}
	requireByteIdentical(t, localDir, filepath.Join(dataDir, "torn-frame"))
}
