// Package faultinject provides deterministic, replayable fault plans
// for exercising the tool↔runtime boundary's fault isolation: callback
// faults (panic, hang, delay), stream-I/O faults (transient and torn
// write errors, failing file opens) and forced chunk drops. A Plan is
// wired into a tool through the tool.Options hooks (WrapCallback,
// OpenTraceFile, DropChunk); the chaos tests then assert that the
// application completes with pinned checksums, that every lost sample
// is accounted for exactly, and that the health report names every
// injected fault.
//
// Determinism: explicit rules fire at exact (event, invocation) or
// (thread, write-index) coordinates; probabilistic rules hash the
// plan's seed with the coordinate, so the same seed yields the same
// fault schedule on every run regardless of goroutine interleaving.
// Every fault that actually fires is recorded; Fired() returns the
// records for assertions and for diffing two runs of the same seed.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"goomp/internal/collector"
	"goomp/internal/tool"
)

// ErrInjected is the error returned by injected I/O faults; tests can
// errors.Is against it to distinguish injected failures from real ones.
var ErrInjected = errors.New("faultinject: injected I/O error")

// Kind classifies a fired fault.
type Kind int

// Fault kinds.
const (
	KindPanic Kind = iota
	KindHang
	KindDelay
	KindWriteError
	KindTornWrite
	KindOpenError
	KindChunkDrop
	KindMsgDrop
	KindMsgDelay
	KindStall
	KindDialError
	KindConnCut
	KindConnTear
	KindAckDelay
	KindDiskFull
	KindSyncError
	KindSlowSync
	KindCrashWrite
	KindCrashRename
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindHang:
		return "hang"
	case KindDelay:
		return "delay"
	case KindWriteError:
		return "write-error"
	case KindTornWrite:
		return "torn-write"
	case KindOpenError:
		return "open-error"
	case KindChunkDrop:
		return "chunk-drop"
	case KindMsgDrop:
		return "msg-drop"
	case KindMsgDelay:
		return "msg-delay"
	case KindStall:
		return "stall"
	case KindDialError:
		return "dial-error"
	case KindConnCut:
		return "conn-cut"
	case KindConnTear:
		return "conn-tear"
	case KindAckDelay:
		return "ack-delay"
	case KindDiskFull:
		return "disk-full"
	case KindSyncError:
		return "sync-error"
	case KindSlowSync:
		return "slow-sync"
	case KindCrashWrite:
		return "crash-write"
	case KindCrashRename:
		return "crash-rename"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Record is one fired fault. Callback faults carry the event and the
// 1-based invocation number; I/O faults carry the thread and the write
// index (or chunk sequence / open attempt); message and stall faults
// carry a rendered coordinate in Point.
type Record struct {
	Kind   Kind
	Event  collector.Event
	Thread int32
	Index  uint64
	Point  string
}

func (r Record) String() string {
	switch r.Kind {
	case KindPanic, KindHang, KindDelay:
		return fmt.Sprintf("%s %s invocation %d", r.Kind, r.Event, r.Index)
	case KindMsgDrop, KindMsgDelay, KindStall,
		KindDialError, KindConnCut, KindConnTear, KindAckDelay,
		KindDiskFull, KindSyncError, KindSlowSync, KindCrashWrite, KindCrashRename:
		return fmt.Sprintf("%s %s", r.Kind, r.Point)
	default:
		return fmt.Sprintf("%s thread %d index %d", r.Kind, r.Thread, r.Index)
	}
}

type eventKey struct {
	e   collector.Event
	nth uint64
}

type writeKey struct {
	thread int32
	index  uint64
}

type callbackFault struct {
	kind  Kind
	delay time.Duration
}

// delayEveryRule is a sustained periodic callback delay: every nth
// invocation of an event sleeps, modelling steady external jitter
// rather than DelayOn's one-shot spike.
type delayEveryRule struct {
	every uint64
	delay time.Duration
}

// Plan is a replayable fault schedule. Build it with the rule methods,
// wire it into a tool with Apply, run the workload, then inspect
// Fired(). A Plan may be used by many goroutines concurrently.
type Plan struct {
	seed uint64

	mu            sync.Mutex
	callbacks     map[eventKey]callbackFault
	periodic      map[collector.Event]delayEveryRule
	invoked       map[collector.Event]uint64 // per-event invocation counter
	writes        map[writeKey]int           // attempts to fail with a clean error
	torn          map[writeKey]bool          // first attempt fails mid-write
	opens         map[int32]int              // open attempts to fail per thread
	opened        map[int32]int              // open attempts seen per thread
	drops         map[writeKey]bool          // chunk sequences to drop
	writeRate     float64                    // seed-hashed transient-error rate
	dropEvery     int                        // drop every nth chunk per thread
	msgs          []msgRule                  // mpi message drop/delay rules
	stalls        map[string]bool            // armed named stall points
	dialFails     int                        // ingest dials to fail first
	dialFailFrom  int                        // 1-based start of a failing dial window
	dialFailCount int                        // dials in the failing window
	dials         int                        // ingest dial attempts seen
	connsMade     int                        // ingest connections established
	cuts          map[int]int                // conn → frames before the cut
	tears         map[int]int                // conn → 1-based frame torn mid-write
	ackDelay      time.Duration              // slow-link delay per conn read
	fsRules       []*fsRule                  // writer-side filesystem faults
	onCrash       func()                     // fired synchronously by crash-shaped fs faults
	fired         []Record

	releaseOnce sync.Once
	release     chan struct{}
}

// New returns an empty plan with the given replay seed.
func New(seed int64) *Plan {
	return &Plan{
		seed:      uint64(seed),
		callbacks: make(map[eventKey]callbackFault),
		periodic:  make(map[collector.Event]delayEveryRule),
		invoked:   make(map[collector.Event]uint64),
		writes:    make(map[writeKey]int),
		torn:      make(map[writeKey]bool),
		opens:     make(map[int32]int),
		opened:    make(map[int32]int),
		drops:     make(map[writeKey]bool),
		stalls:    make(map[string]bool),
		cuts:      make(map[int]int),
		tears:     make(map[int]int),
		release:   make(chan struct{}),
	}
}

// PanicOn makes the nth (1-based) invocation of e's callback panic
// instead of running the tool's callback; the sample that invocation
// would have stored is therefore never stored (the accounting tests
// subtract one stored sample per fired panic).
func (p *Plan) PanicOn(e collector.Event, nth uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.callbacks[eventKey{e, nth}] = callbackFault{kind: KindPanic}
}

// HangOn makes the nth invocation of e's callback block until Release
// is called, without running the tool's callback.
func (p *Plan) HangOn(e collector.Event, nth uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.callbacks[eventKey{e, nth}] = callbackFault{kind: KindHang}
}

// DelayOn makes the nth invocation of e's callback sleep d before
// running the tool's callback (the sample is still stored) — the slow
// callback the watchdog's circuit breaker exists to catch.
func (p *Plan) DelayOn(e collector.Event, nth uint64, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.callbacks[eventKey{e, nth}] = callbackFault{kind: KindDelay, delay: d}
}

// DelayEvery makes every nth invocation of e's callback (n, 2n, …)
// sleep d before running the tool's callback — sustained external
// jitter (a congested machine, a slow wrapped tool) rather than
// DelayOn's one-shot spike. Exact-coordinate rules on the same
// invocation take precedence.
func (p *Plan) DelayEvery(e collector.Event, every uint64, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.periodic[e] = delayEveryRule{every: every, delay: d}
}

// Release unblocks every hung callback (idempotent).
func (p *Plan) Release() { p.releaseOnce.Do(func() { close(p.release) }) }

// FailWrite makes the write at (thread, index) fail cleanly — zero
// bytes written — for its first attempts tries, then succeed. With
// attempts within the streamer's retry limit the write eventually
// lands and no data is lost; beyond it the thread degrades.
func (p *Plan) FailWrite(thread int32, index uint64, attempts int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.writes[writeKey{thread, index}] = attempts
}

// TearWrite makes the write at (thread, index) fail after writing only
// part of the block — the torn-file case that must never be retried in
// place. The partial bytes really reach the file, so readers exercise
// truncated-trace recovery.
func (p *Plan) TearWrite(thread int32, index uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.torn[writeKey{thread, index}] = true
}

// FailOpen makes the first attempts opens of thread's trace file fail.
func (p *Plan) FailOpen(thread int32, attempts int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.opens[thread] = attempts
}

// WriteErrorRate injects a transient (single-attempt, clean) write
// error at each (thread, write-index) the seed hashes below rate.
// The retry then succeeds, so a rate well under 1 loses no data.
func (p *Plan) WriteErrorRate(rate float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.writeRate = rate
}

// DropChunkAt forces the streamed chunk with the given per-thread
// sequence number to be discarded before it is written.
func (p *Plan) DropChunkAt(thread int32, seq uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.drops[writeKey{thread, seq}] = true
}

// DropEveryNth forces every nth streamed chunk (per thread, 1-based)
// to be discarded.
func (p *Plan) DropEveryNth(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dropEvery = n
}

// Apply wires the plan into the tool options: callbacks are wrapped,
// trace files opened through the fault schedule, and chunk drops
// forced. Existing hooks are composed, not replaced.
func (p *Plan) Apply(opts *tool.Options) {
	inner := opts.WrapCallback
	opts.WrapCallback = func(cb collector.Callback) collector.Callback {
		if inner != nil {
			cb = inner(cb)
		}
		return p.WrapCallback(cb)
	}
	opts.OpenTraceFile = p.Opener(opts.OpenTraceFile)
	opts.DialIngest = p.Dialer(opts.DialIngest)
	prevDrop := opts.DropChunk
	opts.DropChunk = func(thread int32, seq int) bool {
		if prevDrop != nil && prevDrop(thread, seq) {
			return true
		}
		return p.DropChunk(thread, seq)
	}
}

// WrapCallback wraps a collector callback with the plan's callback
// fault schedule; it matches the tool.Options.WrapCallback signature.
func (p *Plan) WrapCallback(cb collector.Callback) collector.Callback {
	return func(e collector.Event, ti *collector.ThreadInfo) {
		f, nth, ok := p.nextCallbackFault(e)
		if !ok {
			cb(e, ti)
			return
		}
		switch f.kind {
		case KindPanic:
			p.record(Record{Kind: KindPanic, Event: e, Index: nth})
			panic(fmt.Sprintf("faultinject: panic at %s invocation %d", e, nth))
		case KindHang:
			p.record(Record{Kind: KindHang, Event: e, Index: nth})
			<-p.release
		case KindDelay:
			p.record(Record{Kind: KindDelay, Event: e, Index: nth})
			time.Sleep(f.delay)
			cb(e, ti)
		}
	}
}

func (p *Plan) nextCallbackFault(e collector.Event) (callbackFault, uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.invoked[e]++
	nth := p.invoked[e]
	f, ok := p.callbacks[eventKey{e, nth}]
	if !ok {
		if r, has := p.periodic[e]; has && r.every > 0 && nth%r.every == 0 {
			return callbackFault{kind: KindDelay, delay: r.delay}, nth, true
		}
	}
	return f, nth, ok
}

// Opener wraps a trace-file opener (nil means os.Create) with the
// plan's open- and write-fault schedules; it matches the
// tool.Options.OpenTraceFile signature. The owning thread is parsed
// from the streamer's trace.<thread>.psxt naming; files with other
// names get thread -1.
func (p *Plan) Opener(inner func(string) (io.WriteCloser, error)) func(string) (io.WriteCloser, error) {
	if inner == nil {
		inner = func(path string) (io.WriteCloser, error) { return os.Create(path) }
	}
	return func(path string) (io.WriteCloser, error) {
		thread := threadFromPath(path)
		if p.openFault(thread) {
			return nil, fmt.Errorf("open %s: %w", path, ErrInjected)
		}
		w, err := inner(path)
		if err != nil {
			return nil, err
		}
		return &faultWriter{p: p, thread: thread, inner: w}, nil
	}
}

func threadFromPath(path string) int32 {
	base := filepath.Base(path)
	base = strings.TrimPrefix(base, "trace.")
	base = strings.TrimSuffix(base, ".psxt")
	n, err := strconv.ParseInt(base, 10, 32)
	if err != nil {
		return -1
	}
	return int32(n)
}

func (p *Plan) openFault(thread int32) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	attempt := p.opened[thread]
	p.opened[thread] = attempt + 1
	if attempt < p.opens[thread] {
		p.fired = append(p.fired, Record{Kind: KindOpenError, Thread: thread, Index: uint64(attempt)})
		return true
	}
	return false
}

// DropChunk consults the forced-drop schedule; it matches the
// tool.Options.DropChunk signature (seq is the streamer's 0-based
// per-thread chunk sequence).
func (p *Plan) DropChunk(thread int32, seq int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	drop := p.drops[writeKey{thread, uint64(seq)}]
	if !drop && p.dropEvery > 0 && (seq+1)%p.dropEvery == 0 {
		drop = true
	}
	if drop {
		p.fired = append(p.fired, Record{Kind: KindChunkDrop, Thread: thread, Index: uint64(seq)})
	}
	return drop
}

// Fired returns a copy of every fault that actually fired, in firing
// order per coordinate (the global order depends on scheduling; use
// SortedFired for a canonical view).
func (p *Plan) Fired() []Record {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Record(nil), p.fired...)
}

// SortedFired returns the fired records in a canonical order,
// independent of goroutine interleaving — the view to compare across
// replays of one seed.
func (p *Plan) SortedFired() []Record {
	out := p.Fired()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Event != b.Event {
			return a.Event < b.Event
		}
		if a.Thread != b.Thread {
			return a.Thread < b.Thread
		}
		return a.Index < b.Index
	})
	return out
}

// FiredCount returns how many faults of the given kind fired.
func (p *Plan) FiredCount(k Kind) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, r := range p.fired {
		if r.Kind == k {
			n++
		}
	}
	return n
}

func (p *Plan) record(r Record) {
	p.mu.Lock()
	p.fired = append(p.fired, r)
	p.mu.Unlock()
}

// writeFault decides the fate of one write attempt; it returns the
// bytes to report written, the error, and whether a fault fired.
func (p *Plan) writeFault(thread int32, index uint64, attempt, size int) (int, error, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := writeKey{thread, index}
	if p.torn[key] && attempt == 0 {
		n := size / 2
		if n == 0 {
			n = 1
		}
		p.fired = append(p.fired, Record{Kind: KindTornWrite, Thread: thread, Index: index})
		return n, fmt.Errorf("torn after %d bytes: %w", n, ErrInjected), true
	}
	limit := p.writes[key]
	if limit == 0 && p.writeRate > 0 && p.roll(uint64(thread), index) < p.writeRate {
		limit = 1 // transient: the retry succeeds
	}
	if attempt < limit {
		p.fired = append(p.fired, Record{Kind: KindWriteError, Thread: thread, Index: index})
		return 0, ErrInjected, true
	}
	return 0, nil, false
}

// roll maps (seed, a, b) to [0, 1) with a splitmix-style hash, giving
// interleaving-independent probabilistic faults.
func (p *Plan) roll(a, b uint64) float64 {
	h := p.seed ^ (a+1)*0x9e3779b97f4a7c15 ^ (b+1)*0xbf58476d1ce4e5b9
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}

// faultWriter applies the write-fault schedule in front of the real
// file. Only the streamer's writer goroutine uses one instance, so the
// index/attempt cursors need no lock; the plan lookups take the plan
// lock internally.
type faultWriter struct {
	p       *Plan
	thread  int32
	inner   io.WriteCloser
	index   uint64 // completed (or abandoned) writes so far
	attempt int    // failed attempts at the current index
}

func (w *faultWriter) Write(b []byte) (int, error) {
	n, err, faulted := w.p.writeFault(w.thread, w.index, w.attempt, len(b))
	if faulted {
		if n > 0 {
			// A torn write leaves its partial bytes in the real file so
			// readers see a genuinely truncated trace.
			if wn, werr := w.inner.Write(b[:n]); werr != nil {
				return wn, werr
			}
			w.index++
			w.attempt = 0
		} else {
			w.attempt++
		}
		return n, err
	}
	w.index++
	w.attempt = 0
	return w.inner.Write(b)
}

func (w *faultWriter) Close() error { return w.inner.Close() }
