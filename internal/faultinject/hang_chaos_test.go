package faultinject_test

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"goomp/internal/faultinject"
	"goomp/internal/mpi"
	"goomp/internal/omp"
	"goomp/internal/perf"
	"goomp/internal/tool"
)

// The hang chaos suite: inject wedges — an AB-BA lock cycle, a dropped
// mpi message, a barrier no-show — under an attached, supervised tool
// and assert the contract end to end: detection within twice the hang
// timeout, a report naming every blocked thread's wait site (and the
// cycle when there is one), and the gap-free trace prefix salvaged to
// disk with the report appended.

const hangTimeout = 150 * time.Millisecond

// attachSupervised attaches a supervised tool whose hang reports land
// on the returned channel instead of aborting the process.
func attachSupervised(t *testing.T, rt *omp.RT, dir string) (*tool.Tool, <-chan string) {
	t.Helper()
	ch := make(chan string, 1)
	opts := tool.FullMeasurement()
	opts.HangTimeout = hangTimeout
	opts.HangDir = dir
	opts.OnHang = func(rep string) { ch <- rep }
	tl, err := tool.AttachRuntime(rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tl, ch
}

// awaitHang waits for the report and pins the detection-latency bound:
// the hang must be diagnosed within 2× the hang timeout of the moment
// the workload wedged.
func awaitHang(t *testing.T, ch <-chan string, wedgedAt time.Time) string {
	t.Helper()
	select {
	case rep := <-ch:
		if el := time.Since(wedgedAt); el > 2*hangTimeout {
			t.Errorf("detection took %v, want <= %v", el, 2*hangTimeout)
		}
		return rep
	case <-time.After(20 * hangTimeout):
		t.Fatal("hang never detected")
		return ""
	}
}

// checkSalvage asserts the on-disk contract: hang.report holds the
// rendered report, and every salvaged trace file parses gap-free with
// the report appended as a PSXR block.
func checkSalvage(t *testing.T, dir, rep string) {
	t.Helper()
	onDisk, err := os.ReadFile(filepath.Join(dir, "hang.report"))
	if err != nil {
		t.Fatalf("hang.report not salvaged: %v", err)
	}
	if string(onDisk) != rep {
		t.Errorf("hang.report differs from the delivered report")
	}
	traces, _ := filepath.Glob(filepath.Join(dir, "trace.*.psxt"))
	if len(traces) == 0 {
		t.Fatalf("no trace files salvaged to %s", dir)
	}
	for _, path := range traces {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		_, reports, err := perf.ReadTraceStreamReports(f)
		f.Close()
		if err != nil {
			t.Errorf("%s: salvaged trace does not parse cleanly: %v", filepath.Base(path), err)
			continue
		}
		if len(reports) != 1 || reports[0] != rep {
			t.Errorf("%s: appended report blocks = %d, want the hang report", filepath.Base(path), len(reports))
		}
	}
}

// TestChaosHangABBALockCycle wedges two omp threads in the classic
// AB-BA lock cycle and asserts the deadlock verdict, the rendered
// cycle, both wait sites, and the salvage.
func TestChaosHangABBALockCycle(t *testing.T) {
	rt := omp.New(omp.Config{NumThreads: 2})
	defer rt.Close()
	dir := t.TempDir()
	tl, ch := attachSupervised(t, rt, dir)
	defer tl.Detach()

	var a, b omp.Lock
	var held sync.WaitGroup
	held.Add(2)
	go rt.Parallel(func(tc *omp.ThreadCtx) {
		// Each thread takes its first lock, rendezvouses so both are
		// held, then blocks on the other's — a guaranteed cycle. The
		// two threads never return; the region is abandoned.
		switch tc.ThreadNum() {
		case 0:
			a.Acquire(tc)
			held.Done()
			held.Wait()
			b.Acquire(tc)
		case 1:
			b.Acquire(tc)
			held.Done()
			held.Wait()
			a.Acquire(tc)
		}
	})
	held.Wait()
	rep := awaitHang(t, ch, time.Now())

	if !strings.Contains(rep, "verdict=deadlock") {
		t.Errorf("report verdict is not deadlock:\n%s", rep)
	}
	if !strings.Contains(rep, "cycle:") {
		t.Errorf("report renders no cycle:\n%s", rep)
	}
	for _, want := range []string{"thread 0", "thread 1", "lock", "Acquire"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report does not mention %q:\n%s", want, rep)
		}
	}
	if got := tl.HangReport(); got != rep {
		t.Errorf("Tool.HangReport disagrees with the delivered report")
	}
	if !strings.Contains(renderReport(tl), "salvaged gap-free prefix") {
		t.Errorf("tool report carries no torn-prefix warning")
	}
	checkSalvage(t, dir, rep)
}

func renderReport(tl *tool.Tool) string {
	var sb strings.Builder
	tl.Report().WriteTo(&sb)
	return sb.String()
}

// TestChaosHangMPIDroppedMessage drops the one message a rank is
// waiting for and asserts the no-cycle verdict names the rank, its
// Recv filter and its wait site — then heals the world and lets it
// finish.
func TestChaosHangMPIDroppedMessage(t *testing.T) {
	rt := omp.New(omp.Config{NumThreads: 1})
	defer rt.Close()
	dir := t.TempDir()
	tl, ch := attachSupervised(t, rt, dir)
	defer tl.Detach()

	plan := faultinject.New(7)
	plan.DropMessage(0, 1, 7)
	world := mpi.NewWorld(2)
	plan.ApplyWorld(world)

	comm0ch := make(chan *mpi.Comm, 1)
	got := make(chan float64, 1)
	done := make(chan struct{})
	wedged := time.Now()
	go func() {
		defer close(done)
		world.Run(func(c *mpi.Comm) {
			if c.Rank() == 0 {
				c.Send(1, 7, []float64{42}) // dropped by the plan
				comm0ch <- c
			} else {
				data, _ := c.Recv(0, 7) // blocks until the re-send below
				got <- data[0]
			}
		})
	}()
	rep := awaitHang(t, ch, wedged)

	if !strings.Contains(rep, "verdict=no-progress") {
		t.Errorf("a lost message must not be called a deadlock:\n%s", rep)
	}
	for _, want := range []string{"rank 1", "message", "src=0 tag=7", "Recv"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report does not mention %q:\n%s", want, rep)
		}
	}
	if n := plan.FiredCount(faultinject.KindMsgDrop); n != 1 {
		t.Errorf("msg-drop fired %d times, want 1", n)
	}
	checkSalvage(t, dir, rep)

	// Heal: clear the fault hook and re-send, so the world drains.
	world.SetFaultHook(nil)
	(<-comm0ch).Send(1, 7, []float64{42})
	select {
	case v := <-got:
		if v != 42 {
			t.Errorf("received %v after heal, want 42", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rank 1 still stuck after the message was re-sent")
	}
	<-done
}

// TestChaosHangBarrierNoShow parks one thread at an armed stall point
// while its teammates wait at the implicit barrier: blocked threads,
// no cycle. Release lets the region complete normally afterwards.
func TestChaosHangBarrierNoShow(t *testing.T) {
	rt := omp.New(omp.Config{NumThreads: 4})
	defer rt.Close()
	dir := t.TempDir()
	tl, ch := attachSupervised(t, rt, dir)
	defer tl.Detach()

	plan := faultinject.New(3)
	plan.StallAt("before-barrier")
	wedged := time.Now()
	done := make(chan struct{})
	go func() {
		defer close(done)
		rt.Parallel(func(tc *omp.ThreadCtx) {
			if tc.ThreadNum() == 0 {
				plan.Stall("before-barrier")
			}
		})
	}()
	rep := awaitHang(t, ch, wedged)

	if !strings.Contains(rep, "verdict=no-progress") {
		t.Errorf("a no-show is not a deadlock:\n%s", rep)
	}
	if !strings.Contains(rep, "barrier") {
		t.Errorf("report does not mention the barrier:\n%s", rep)
	}
	if !strings.Contains(rep, "3 thread(s) blocked") {
		t.Errorf("report does not count the three barrier waiters:\n%s", rep)
	}
	checkSalvage(t, dir, rep)

	plan.Release()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("region did not complete after Release")
	}
}

// TestChaosHangNoFalsePositive oversubscribes a guided loop over a
// deep tree barrier, with every mpi delivery delayed, for well past
// the hang timeout: slow progress is progress, and the watchdog must
// stay silent.
func TestChaosHangNoFalsePositive(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rt := omp.New(omp.Config{NumThreads: 16, TreeBarrierThreshold: 2})
	defer rt.Close()
	tl, ch := attachSupervised(t, rt, t.TempDir())
	defer tl.Detach()

	plan := faultinject.New(11)
	plan.DelayMessage(faultinject.Any, faultinject.Any, faultinject.Any, hangTimeout/5)
	world := mpi.NewWorld(2)
	plan.ApplyWorld(world)

	var sink omp.AtomicFloat64
	deadline := time.Now().Add(4 * hangTimeout)
	for time.Now().Before(deadline) {
		rt.ParallelN(16, func(tc *omp.ThreadCtx) {
			tc.ForSched(2048, omp.ScheduleGuided, 1, func(lo, hi int) {
				s := 0.0
				for i := lo; i < hi; i++ {
					s += float64(i % 7)
				}
				tc.AtomicAddFloat64(&sink, s)
			})
			tc.Barrier()
		})
		world.Run(func(c *mpi.Comm) {
			if c.Rank() == 0 {
				c.Send(1, 1, []float64{1})
			} else {
				c.Recv(0, 1)
			}
			c.Barrier()
		})
	}

	select {
	case rep := <-ch:
		t.Fatalf("false positive on a live workload:\n%s", rep)
	default:
	}
	if got := tl.HangReport(); got != "" {
		t.Fatalf("HangReport nonempty on a live workload:\n%s", got)
	}
}

// TestChaosHangAbortExitsNonzero re-execs the test binary into a
// supervised AB-BA deadlock with HangAbort set and asserts the whole
// process contract: stderr carries the report, the exit status is
// nonzero, and the salvage is on disk.
func TestChaosHangAbortExitsNonzero(t *testing.T) {
	if os.Getenv("GOOMP_HANG_HELPER") == "1" {
		hangAbortHelper() // exits 2 via the hang handler; never returns
		return
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "TestChaosHangAbortExitsNonzero$", "-test.timeout", "60s")
	cmd.Env = append(os.Environ(), "GOOMP_HANG_HELPER=1", "GOOMP_HANG_DIR="+dir)
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("subprocess err = %v (output %q), want a nonzero exit", err, out)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("subprocess exited %d, want 2; output:\n%s", code, out)
	}
	if !strings.Contains(string(out), "HANG detected: verdict=deadlock") {
		t.Errorf("subprocess stderr carries no hang report:\n%s", out)
	}
	rep, err := os.ReadFile(filepath.Join(dir, "hang.report"))
	if err != nil {
		t.Fatalf("no salvaged hang.report: %v", err)
	}
	checkSalvage(t, dir, string(rep))
}

// hangAbortHelper is the subprocess body: a supervised AB-BA deadlock
// with HangAbort, called on the main test goroutine so the process
// truly wedges until the handler exits it.
func hangAbortHelper() {
	rt := omp.New(omp.Config{NumThreads: 2})
	opts := tool.FullMeasurement()
	opts.HangTimeout = hangTimeout
	opts.HangDir = os.Getenv("GOOMP_HANG_DIR")
	opts.HangAbort = true
	if _, err := tool.AttachRuntime(rt, opts); err != nil {
		os.Exit(3)
	}
	var a, b omp.Lock
	var held sync.WaitGroup
	held.Add(2)
	rt.Parallel(func(tc *omp.ThreadCtx) {
		switch tc.ThreadNum() {
		case 0:
			a.Acquire(tc)
			held.Done()
			held.Wait()
			b.Acquire(tc)
		case 1:
			b.Acquire(tc)
			held.Done()
			held.Wait()
			a.Acquire(tc)
		}
	})
}
