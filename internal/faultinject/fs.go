package faultinject

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"goomp/internal/ingest"
)

// Writer-side filesystem faults for the ingest server's storage path.
// IngestFS wraps the real filesystem behind ingest.Options.FS, so
// every byte psxd persists — trace blocks, journal entries, manifests
// — passes the plan's disk schedule exactly where a real disk would
// fail it:
//
//   - DiskFullAfter: ENOSPC once a byte budget is spent (matching
//     paths only), the graceful-degradation case — the run must be
//     quarantined with the typed INGEST_STORAGE code while other runs
//     keep flowing.
//   - FailSyncAt / SlowSync: EIO on the nth fsync, or a stalled fsync
//     — the cases behind durable-ack downgrades and bounded drains.
//   - TearWriteFS: the nth write lands only half its bytes, the torn
//     block recovery must CRC away.
//   - CrashOnWrite / CrashOnRename: half-write (or rename-point)
//     faults that synchronously fire the plan's OnCrash hook — tests
//     point it at Server.Kill so the "daemon died right here" disk
//     state is exact and deterministic, before any error can be acked.
//
// The faults shape only what reaches disk; recovery always reads the
// real filesystem back.

// fsRule is one armed filesystem fault.
type fsRule struct {
	kind  Kind
	match string // path substring; "" matches every path
	nth   int    // 1-based matching-op index (write or sync rules)
	bytes int64  // byte budget (disk-full)
	delay time.Duration
	after bool // crash-rename: crash after the rename commits

	seen    int   // matching ops observed
	written int64 // bytes accepted so far (disk-full)
	spent   bool  // one-shot rules that already fired
}

func (r *fsRule) matches(path string) bool {
	return r.match == "" || strings.Contains(path, r.match)
}

// DiskFullAfter arms an ENOSPC fault: once n bytes have been written
// to files whose path contains match, every further write to matching
// files fails with ENOSPC (wrapped in ErrInjected).
func (p *Plan) DiskFullAfter(match string, n int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fsRules = append(p.fsRules, &fsRule{kind: KindDiskFull, match: match, bytes: n})
}

// FailSyncAt makes the nth (1-based) Sync of a matching file fail with
// EIO.
func (p *Plan) FailSyncAt(match string, nth int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fsRules = append(p.fsRules, &fsRule{kind: KindSyncError, match: match, nth: nth})
}

// SlowSync makes every Sync of a matching file take at least d — the
// stalled-disk case bounded drains exist for.
func (p *Plan) SlowSync(match string, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fsRules = append(p.fsRules, &fsRule{kind: KindSlowSync, match: match, delay: d})
}

// TearWriteFS makes the nth (1-based) write to a matching file land
// only half its bytes before failing.
func (p *Plan) TearWriteFS(match string, nth int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fsRules = append(p.fsRules, &fsRule{kind: KindTornWrite, match: match, nth: nth})
}

// CrashOnWrite makes the nth (1-based) write to a matching file tear
// halfway and then fires the OnCrash hook synchronously — before the
// caller can observe the error, so a test's Server.Kill suppresses
// any ack for the torn frame exactly like a real kill -9 mid-write.
func (p *Plan) CrashOnWrite(match string, nth int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fsRules = append(p.fsRules, &fsRule{kind: KindCrashWrite, match: match, nth: nth})
}

// CrashOnRename crashes around a matching rename: with after false the
// rename never happens (crash-before — the old file survives); with
// after true the rename commits first (crash-after — the new file
// survives). Either way OnCrash fires synchronously.
func (p *Plan) CrashOnRename(match string, after bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fsRules = append(p.fsRules, &fsRule{kind: KindCrashRename, match: match, after: after})
}

// SetOnCrash installs the hook crash-shaped filesystem faults fire
// (typically the ingest server's Kill).
func (p *Plan) SetOnCrash(f func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.onCrash = f
}

// IngestFS wraps the real filesystem with the plan's disk-fault
// schedule; hand it to ingest.Options.FS.
func (p *Plan) IngestFS() ingest.FS { return faultFS{p: p} }

type faultFS struct{ p *Plan }

func (f faultFS) Create(path string) (ingest.File, error) {
	w, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &faultFile{p: f.p, path: path, inner: w}, nil
}

func (f faultFS) OpenAppend(path string) (ingest.File, error) {
	w, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &faultFile{p: f.p, path: path, inner: w}, nil
}

func (f faultFS) Rename(oldpath, newpath string) error {
	crash, after := f.p.renameFault(newpath)
	if !crash {
		return os.Rename(oldpath, newpath)
	}
	if after {
		os.Rename(oldpath, newpath)
	}
	f.p.fireCrash()
	return fmt.Errorf("rename %s: %w", filepath.Base(newpath), ErrInjected)
}

// faultFile interposes the plan between the server's writer goroutine
// and one real file.
type faultFile struct {
	p     *Plan
	path  string
	inner *os.File
}

// fsAction is one write/sync decision, resolved under the plan lock
// but executed outside it (the crash hook takes server locks).
type fsAction struct {
	kind  Kind
	delay time.Duration
	err   error
	crash bool
}

func (f *faultFile) Write(b []byte) (int, error) {
	act := f.p.writeFSFault(f.path, len(b))
	switch act.kind {
	case KindDiskFull:
		return 0, act.err
	case KindTornWrite, KindCrashWrite:
		n := len(b) / 2
		if n == 0 && len(b) > 0 {
			n = 1
		}
		// The partial bytes really land: recovery must CRC them away.
		f.inner.Write(b[:n])
		if act.crash {
			f.p.fireCrash()
		}
		return n, act.err
	}
	return f.inner.Write(b)
}

func (f *faultFile) Sync() error {
	act := f.p.syncFSFault(f.path)
	if act.delay > 0 {
		time.Sleep(act.delay)
	}
	if act.err != nil {
		return act.err
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error { return f.inner.Close() }

// writeFSFault resolves the fate of one write under the plan lock.
func (p *Plan) writeFSFault(path string, size int) fsAction {
	p.mu.Lock()
	defer p.mu.Unlock()
	base := filepath.Base(path)
	for _, r := range p.fsRules {
		if !r.matches(path) {
			continue
		}
		switch r.kind {
		case KindDiskFull:
			if r.written+int64(size) > r.bytes {
				p.fired = append(p.fired, Record{Kind: KindDiskFull,
					Point: fmt.Sprintf("%s after %d bytes", base, r.written)})
				return fsAction{kind: KindDiskFull,
					err: fmt.Errorf("write %s: %w: %w", base, syscall.ENOSPC, ErrInjected)}
			}
			r.written += int64(size)
		case KindTornWrite, KindCrashWrite:
			if r.spent {
				continue
			}
			r.seen++
			if r.seen == r.nth {
				r.spent = true
				p.fired = append(p.fired, Record{Kind: r.kind,
					Point: fmt.Sprintf("%s write %d", base, r.nth)})
				return fsAction{kind: r.kind, crash: r.kind == KindCrashWrite,
					err: fmt.Errorf("write %s: torn: %w", base, ErrInjected)}
			}
		}
	}
	return fsAction{}
}

// syncFSFault resolves the fate of one fsync under the plan lock.
func (p *Plan) syncFSFault(path string) fsAction {
	p.mu.Lock()
	defer p.mu.Unlock()
	base := filepath.Base(path)
	var act fsAction
	for _, r := range p.fsRules {
		if !r.matches(path) {
			continue
		}
		switch r.kind {
		case KindSlowSync:
			p.fired = append(p.fired, Record{Kind: KindSlowSync,
				Point: fmt.Sprintf("%s sync", base)})
			if r.delay > act.delay {
				act.delay = r.delay
			}
		case KindSyncError:
			if r.spent {
				continue
			}
			r.seen++
			if r.seen == r.nth {
				r.spent = true
				p.fired = append(p.fired, Record{Kind: KindSyncError,
					Point: fmt.Sprintf("%s sync %d", base, r.nth)})
				act.err = fmt.Errorf("sync %s: %w: %w", base, syscall.EIO, ErrInjected)
			}
		}
	}
	return act
}

// renameFault reports whether a crash-rename rule covers newpath.
func (p *Plan) renameFault(newpath string) (crash, after bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.fsRules {
		if r.kind != KindCrashRename || r.spent || !r.matches(newpath) {
			continue
		}
		r.spent = true
		p.fired = append(p.fired, Record{Kind: KindCrashRename,
			Point: fmt.Sprintf("%s (after=%v)", filepath.Base(newpath), r.after)})
		return true, r.after
	}
	return false, false
}

// fireCrash invokes the OnCrash hook outside the plan lock.
func (p *Plan) fireCrash() {
	p.mu.Lock()
	f := p.onCrash
	p.mu.Unlock()
	if f != nil {
		f()
	}
}
