package faultinject

import (
	"fmt"
	"net"
	"time"
)

// Network-edge fault rules for the trace ingestion path: failing dials
// (a dead psxd at attach, or one that dies and stays dead), connection
// cuts after a chosen number of frames (server death mid-run), frames
// torn mid-write (a mid-chunk disconnect — the frame was partially on
// the wire, never acked, and must be resent whole), and delayed reads
// (a slow link whose acks lag). The rules are wired through
// tool.Options.DialIngest by Plan.Apply, composing with any dialer
// already installed.

// FailDial makes the first attempts dials to the ingestion daemon
// fail. With attempts large enough the server is simply dead: the sink
// must degrade to its retention bound without ever blocking a
// recording thread.
func (p *Plan) FailDial(attempts int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dialFails = attempts
}

// FailDialRange makes dial attempts from through from+count-1
// (1-based) fail — an outage window between working connections: the
// first connection(s) establish, the daemon then vanishes for count
// redial attempts, and service returns. Composes with FailDial (which
// covers a prefix of attempts).
func (p *Plan) FailDialRange(from, count int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dialFailFrom, p.dialFailCount = from, count
}

// CutConnAfterFrames severs the nth (1-based) established ingest
// connection once it has carried frames wire frames: the next write
// finds the connection closed. The client reconnects and resends its
// unacknowledged tail.
func (p *Plan) CutConnAfterFrames(conn, frames int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cuts[conn] = frames
}

// TearConnFrame makes the nth (1-based) ingest connection's kth frame
// be written only partially before the connection dies — the mid-chunk
// disconnect. The server reads a torn frame (never acked), so the
// client must resend it whole on the next connection.
func (p *Plan) TearConnFrame(conn, frame int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tears[conn] = frame
}

// DelayAcks makes every read on an ingest connection (the HELLO-ACK
// and every data ack) lag by d — a slow link.
func (p *Plan) DelayAcks(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ackDelay = d
}

// Dialer wraps an ingest dialer (nil means net.DialTimeout) with the
// plan's network fault schedule; it matches the
// tool.Options.DialIngest signature.
func (p *Plan) Dialer(inner func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	if inner == nil {
		inner = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 2*time.Second)
		}
	}
	return func(addr string) (net.Conn, error) {
		if p.dialFault() {
			return nil, fmt.Errorf("dial %s: %w", addr, ErrInjected)
		}
		c, err := inner(addr)
		if err != nil {
			return nil, err
		}
		fc := &faultConn{Conn: c, p: p}
		p.mu.Lock()
		p.connsMade++
		fc.id = p.connsMade
		fc.cutAt = p.cuts[fc.id]
		fc.tearAt = p.tears[fc.id]
		fc.delay = p.ackDelay
		p.mu.Unlock()
		return fc, nil
	}
}

func (p *Plan) dialFault() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	attempt := p.dials
	p.dials++
	inRange := p.dialFailCount > 0 &&
		attempt+1 >= p.dialFailFrom && attempt+1 < p.dialFailFrom+p.dialFailCount
	if attempt < p.dialFails || inRange {
		p.fired = append(p.fired, Record{Kind: KindDialError,
			Index: uint64(attempt), Point: fmt.Sprintf("dial %d", attempt+1)})
		return true
	}
	return false
}

// faultConn applies the connection's fault schedule. Only the sink's
// sender goroutine touches one instance, so the counters need no lock.
type faultConn struct {
	net.Conn
	p       *Plan
	id      int
	writes  int // frames written so far (one frame per Write call)
	cutAt   int
	tearAt  int
	cut     bool
	delay   time.Duration
	delayed bool
}

func (c *faultConn) Write(b []byte) (int, error) {
	if c.cut {
		return 0, fmt.Errorf("faultinject: conn %d cut: %w", c.id, ErrInjected)
	}
	c.writes++
	if c.tearAt > 0 && c.writes == c.tearAt {
		n := len(b) / 2
		if n == 0 {
			n = 1
		}
		c.Conn.Write(b[:n])
		c.Conn.Close()
		c.cut = true
		c.p.record(Record{Kind: KindConnTear,
			Point: fmt.Sprintf("conn %d frame %d", c.id, c.writes)})
		return n, fmt.Errorf("faultinject: conn %d frame %d torn: %w", c.id, c.writes, ErrInjected)
	}
	if c.cutAt > 0 && c.writes > c.cutAt {
		c.Conn.Close()
		c.cut = true
		c.p.record(Record{Kind: KindConnCut,
			Point: fmt.Sprintf("conn %d after %d frames", c.id, c.cutAt)})
		return 0, fmt.Errorf("faultinject: conn %d cut: %w", c.id, ErrInjected)
	}
	return c.Conn.Write(b)
}

func (c *faultConn) Read(b []byte) (int, error) {
	if c.delay > 0 {
		if !c.delayed {
			c.delayed = true
			c.p.record(Record{Kind: KindAckDelay,
				Point: fmt.Sprintf("conn %d reads +%v", c.id, c.delay)})
		}
		time.Sleep(c.delay)
	}
	return c.Conn.Read(b)
}
