package faultinject_test

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"goomp/internal/collector"
	"goomp/internal/epcc"
	"goomp/internal/faultinject"
	"goomp/internal/npb"
	"goomp/internal/omp"
	"goomp/internal/perf"
	"goomp/internal/tool"
)

// parseStreamDir reads every per-thread trace file back, tolerating
// torn files (their gap-free prefix counts, the damage is expected
// under injection) and returns the total parsed samples.
func parseStreamDir(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, e := range entries {
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		buf, err := perf.ReadTraceStream(f)
		f.Close()
		if err != nil && !errors.Is(err, perf.ErrBadTrace) {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		total += len(buf.Samples())
	}
	return total
}

// checkAccounting asserts the exact conservation law of the
// measurement pipeline: every dispatched callback either stored a
// sample that is now on disk, in memory, or in an explicitly counted
// loss bucket — or was itself an injected panic/hang (which fires
// instead of the tool's callback).
func checkAccounting(t *testing.T, rep *tool.Report, plan *faultinject.Plan, parsed int) {
	t.Helper()
	var dispatched uint64
	for _, n := range rep.Events {
		dispatched += n
	}
	lost := uint64(plan.FiredCount(faultinject.KindPanic) + plan.FiredCount(faultinject.KindHang))
	got := uint64(parsed) + uint64(rep.Samples) + rep.Dropped +
		rep.StreamDiscardedSamples + rep.ForcedDropSamples + lost
	if got != dispatched {
		t.Errorf("accounting: parsed %d + in-memory %d + dropped %d + discarded %d + forced %d + faulted callbacks %d = %d, want %d dispatched",
			parsed, rep.Samples, rep.Dropped, rep.StreamDiscardedSamples,
			rep.ForcedDropSamples, lost, got, dispatched)
	}
}

// TestChaosEPCCCompletesUnderInjectedFaults runs EPCC syncbench
// directives while the plan injects a callback panic, transient write
// errors and forced chunk drops. The benchmark must complete with
// finite results, every lost sample must be accounted for exactly, and
// the health report must name the injected panic.
func TestChaosEPCCCompletesUnderInjectedFaults(t *testing.T) {
	rt := omp.New(omp.Config{NumThreads: 4})
	defer rt.Close()
	s := epcc.NewSuite(rt)
	s.InnerReps = 32
	s.OuterReps = 2
	s.DelayLength = 8

	plan := faultinject.New(42)
	plan.PanicOn(collector.EventThrEndIBar, 40)
	plan.WriteErrorRate(0.25)
	plan.DropEveryNth(2)

	dir := t.TempDir()
	opts := tool.FullMeasurement()
	opts.StreamDir = dir
	plan.Apply(&opts)
	tl, err := tool.AttachRuntime(rt, opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range epcc.Directives() {
		if d.Name == "PARALLEL" || d.Name == "BARRIER" || d.Name == "PARALLEL FOR" {
			res := s.Measure(d)
			if res.Time.Mean < 0 || res.Overhead < 0 {
				t.Errorf("%s: negative timing under faults: %+v", d.Name, res)
			}
		}
	}
	tl.Detach()
	if err := tl.StreamError(); err != nil {
		// Transient errors retry to success and forced drops are not
		// errors: a resilient stream reports nothing here.
		t.Errorf("stream error from recoverable faults: %v", err)
	}

	rep := tl.Report()
	checkAccounting(t, rep, plan, parseStreamDir(t, dir))

	if n := plan.FiredCount(faultinject.KindPanic); n != 1 {
		t.Errorf("panic fault fired %d times, want 1", n)
	}
	if rep.Health == nil || len(rep.Health.Panics) != 1 ||
		rep.Health.Panics[0].Event != collector.EventThrEndIBar {
		t.Errorf("health does not name the injected panic: %+v", rep.Health)
	}
	if got, want := rep.ForcedDrops, uint64(plan.FiredCount(faultinject.KindChunkDrop)); got != want {
		t.Errorf("forced drops reported %d, plan fired %d", got, want)
	}
	if rep.ForcedDrops == 0 {
		t.Error("no chunk ever streamed during EPCC: the forced-drop path went unexercised")
	}
	if wf := plan.FiredCount(faultinject.KindWriteError); wf > 0 && rep.StreamRetries == 0 {
		t.Errorf("%d write errors fired but no retries reported", wf)
	}
	if rep.StreamDiscardedSamples != 0 {
		t.Errorf("transient-only I/O faults discarded %d samples", rep.StreamDiscardedSamples)
	}
}

// TestChaosNPBEPChecksumPinnedUnderStreamFaults runs the NPB EP kernel
// under harsher storage faults — a torn write on thread 0's file and a
// permanently failing open on thread 1's — plus a callback panic. The
// kernel's verification checksum must be bit-identical to a clean run,
// losses must be exactly accounted, and the joined stream error must
// name each degraded thread.
func TestChaosNPBEPChecksumPinnedUnderStreamFaults(t *testing.T) {
	clean := omp.New(omp.Config{NumThreads: 4})
	ref := npb.RunEP(clean, npb.ClassS)
	clean.Close()
	if !ref.Verified {
		t.Fatalf("clean EP run failed verification: %v", ref)
	}

	rt := omp.New(omp.Config{NumThreads: 4})
	defer rt.Close()
	plan := faultinject.New(7)
	plan.TearWrite(0, 0)
	plan.FailOpen(1, 1<<20)
	plan.PanicOn(collector.EventFork, 1)
	plan.WriteErrorRate(0.2)

	dir := t.TempDir()
	opts := tool.FullMeasurement()
	opts.StreamDir = dir
	plan.Apply(&opts)
	tl, err := tool.AttachRuntime(rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	res := npb.RunEP(rt, npb.ClassS)
	tl.Detach()

	if !res.Verified {
		t.Errorf("EP failed verification under injected faults: %v", res)
	}
	if res.CheckValue != ref.CheckValue {
		t.Errorf("EP checksum drifted under faults: %v, clean run %v",
			res.CheckValue, ref.CheckValue)
	}

	serr := tl.StreamError()
	if serr == nil {
		t.Fatal("torn write and failed opens produced no stream error")
	}
	for _, frag := range []string{"thread 0", "thread 1"} {
		if !strings.Contains(serr.Error(), frag) {
			t.Errorf("stream error does not name %s: %v", frag, serr)
		}
	}

	rep := tl.Report()
	checkAccounting(t, rep, plan, parseStreamDir(t, dir))
	if rep.DegradedThreads < 2 {
		t.Errorf("degraded threads = %d, want >= 2", rep.DegradedThreads)
	}
	if rep.Health == nil || len(rep.Health.Panics) != 1 ||
		rep.Health.Panics[0].Event != collector.EventFork {
		t.Errorf("health does not name the injected fork panic: %+v", rep.Health)
	}
	if plan.FiredCount(faultinject.KindTornWrite) != 1 {
		t.Errorf("torn-write fault fired %d times, want 1",
			plan.FiredCount(faultinject.KindTornWrite))
	}
}

// TestChaosHungCallbackDetachWithinDeadline injects a callback that
// hangs forever: Detach must still complete within its bounded wait,
// name the wedged event in the report, and salvage the other threads'
// traces through the snapshot fallback.
func TestChaosHungCallbackDetachWithinDeadline(t *testing.T) {
	rt := omp.New(omp.Config{
		NumThreads:     2,
		CallbackBudget: time.Millisecond,
		WatchdogSample: 1,
	})
	plan := faultinject.New(1)
	plan.HangOn(collector.EventJoin, 1)

	dir := t.TempDir()
	opts := tool.FullMeasurement()
	opts.StreamDir = dir
	opts.DetachTimeout = 150 * time.Millisecond
	plan.Apply(&opts)
	tl, err := tool.AttachRuntime(rt, opts)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The join event's callback hangs, wedging the master inside
		// this region's join.
		rt.Parallel(func(tc *omp.ThreadCtx) {})
	}()
	// Wait until the hang has actually fired before detaching.
	for i := 0; plan.FiredCount(faultinject.KindHang) == 0; i++ {
		if i > 1000 {
			t.Fatal("hang fault never fired")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	tl.Detach()
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("Detach took %v with a hung callback; the bounded wait did not bound it", d)
	}

	rep := tl.Report()
	if len(rep.Wedged) != 1 || rep.Wedged[0].Event != collector.EventJoin {
		t.Fatalf("report wedged = %+v, want OMP_EVENT_JOIN", rep.Wedged)
	}
	if rep.Wedged[0].Age <= 0 {
		t.Errorf("wedged event has no age: %+v", rep.Wedged[0])
	}
	// The fork sample that preceded the hung join survived via the
	// snapshot fallback.
	if parsed := parseStreamDir(t, dir); parsed == 0 {
		t.Error("no samples salvaged past the wedged callback")
	}

	plan.Release()
	wg.Wait()
	rt.Close()
}

// TestChaosSlowCallbackTripsBreaker injects an over-budget delay into
// a callback: the watchdog's sampled timing must trip the circuit
// breaker, pausing event generation without disturbing the
// application, and a resume request must re-arm it.
func TestChaosSlowCallbackTripsBreaker(t *testing.T) {
	rt := omp.New(omp.Config{
		NumThreads:     2,
		CallbackBudget: 500 * time.Microsecond,
		WatchdogSample: 1,
	})
	defer rt.Close()
	plan := faultinject.New(3)
	plan.DelayOn(collector.EventFork, 2, 10*time.Millisecond)

	opts := tool.FullMeasurement()
	plan.Apply(&opts)
	tl, err := tool.AttachRuntime(rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		rt.Parallel(func(tc *omp.ThreadCtx) {})
	}
	rep := tl.Report()
	if rep.Health == nil || len(rep.Health.Trips) == 0 {
		t.Fatal("over-budget callback did not trip the breaker")
	}
	if rep.Health.Trips[0].Event != collector.EventFork {
		t.Errorf("trip names %v, want OMP_EVENT_FORK", rep.Health.Trips[0].Event)
	}
	// The breaker paused generation after the slow dispatch.
	frozen := rep.Events[collector.EventFork]
	rt.Parallel(func(tc *omp.ThreadCtx) {})
	if got := tl.Report().Events[collector.EventFork]; got != frozen {
		t.Errorf("events dispatched while breaker open: %d -> %d", frozen, got)
	}
	// Resume re-arms generation.
	if err := tl.Resume(); err != nil {
		t.Fatal(err)
	}
	rt.Parallel(func(tc *omp.ThreadCtx) {})
	if got := tl.Report().Events[collector.EventFork]; got != frozen+1 {
		t.Errorf("resume did not re-arm dispatch: %d, want %d", got, frozen+1)
	}
	tl.Detach()
}

// TestChaosSeededReplayIsDeterministic runs one seeded plan against the
// same single-threaded workload twice: the fired fault records must be
// identical, making any chaos failure replayable from its seed.
func TestChaosSeededReplayIsDeterministic(t *testing.T) {
	run := func() ([]faultinject.Record, *tool.Report) {
		rt := omp.New(omp.Config{NumThreads: 1})
		defer rt.Close()
		plan := faultinject.New(99)
		plan.WriteErrorRate(0.5)
		plan.PanicOn(collector.EventJoin, 10)
		plan.DropEveryNth(3)

		dir := t.TempDir()
		opts := tool.FullMeasurement()
		opts.StreamDir = dir
		plan.Apply(&opts)
		tl, err := tool.AttachRuntime(rt, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			rt.Parallel(func(tc *omp.ThreadCtx) {})
		}
		tl.Detach()
		rep := tl.Report()
		checkAccounting(t, rep, plan, parseStreamDir(t, dir))
		return plan.SortedFired(), rep
	}
	fired1, rep1 := run()
	fired2, rep2 := run()
	if !reflect.DeepEqual(fired1, fired2) {
		t.Errorf("same seed fired different faults:\n run1: %v\n run2: %v", fired1, fired2)
	}
	if len(fired1) == 0 {
		t.Error("seeded plan fired no faults; the replay assertion is vacuous")
	}
	if rep1.ForcedDrops != rep2.ForcedDrops || rep1.StreamRetries != rep2.StreamRetries {
		t.Errorf("reports diverged across replays: %+v vs %+v", rep1, rep2)
	}
}
