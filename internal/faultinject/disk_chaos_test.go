package faultinject_test

import (
	"path/filepath"
	"testing"
	"time"

	"goomp/internal/faultinject"
	"goomp/internal/ingest"
	"goomp/internal/omp"
	"goomp/internal/tool"
)

// The disk chaos suite drives the ingest server's storage path through
// the failure modes a real fleet disk serves up: the daemon killed
// mid-write, the disk filling under one run while others keep flowing,
// and a crash at the atomic manifest commit point. The invariants: a
// restarted daemon recovers exactly what the journal covers and not a
// byte more, a durable client's resend tail closes the gap to
// byte-identical, storage loss is typed INGEST_STORAGE and confined to
// the run whose disk failed, and the conservation accounting law holds
// through all of it.

// restartIngest rebinds a recovering daemon on the exact address the
// killed one held, so a reconnecting sink needs no redirection.
func restartIngest(t *testing.T, addr string, o ingest.Options) *ingest.Server {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv, err := ingest.Serve(addr, o)
		if err == nil {
			t.Cleanup(func() { srv.Close() })
			return srv
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarting psxd on %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitRunWithin is waitRunDone with a caller-chosen deadline — the
// restart tests cross a reconnect backoff, so the default is tight.
func waitRunWithin(t *testing.T, srv *ingest.Server, run string, d time.Duration) ingest.RunInfo {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		for _, ri := range srv.Runs() {
			if ri.ID == run && ri.Complete {
				return ri
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %q never completed; registry: %+v", run, srv.Runs())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestChaosDiskCrashRestartMidChunk is the headline durability test:
// the daemon is killed (exactly as by kill -9) halfway through writing
// a trace block — the torn half really lands on disk, no ack escapes.
// A new daemon on the same address and data dir must replay the
// journal, truncate the torn tail at the last valid entry, answer the
// reconnecting durable sink with the recovered sequence, and accept
// the resent tail — ending with the run directory byte-identical to
// the uninterrupted tee-mode local directory.
func TestChaosDiskCrashRestartMidChunk(t *testing.T) {
	plan := faultinject.New(29)
	dataDir := t.TempDir()
	srv, err := ingest.Serve("127.0.0.1:0", ingest.Options{Dir: dataDir, FS: plan.IngestFS()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	addr := srv.Addr()

	killed := make(chan struct{})
	plan.SetOnCrash(func() {
		srv.Kill()
		close(killed)
	})
	plan.CrashOnWrite("trace.", 4) // the 4th trace-block write tears and the daemon dies

	rt := omp.New(omp.Config{NumThreads: 2})
	defer rt.Close()
	localDir := t.TempDir()
	opts := tool.FullMeasurement()
	opts.StreamDir = localDir
	opts.IngestAddr = addr
	opts.IngestRun = "crash-restart"
	opts.IngestDurable = true
	tl, err := tool.AttachRuntime(rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, rt, 300)

	// The sink keeps draining after the workload; the 4th block write
	// fires the crash.
	select {
	case <-killed:
	case <-time.After(10 * time.Second):
		t.Fatal("the crash write never fired: fewer than 4 blocks reached the server")
	}
	if got := plan.FiredCount(faultinject.KindCrashWrite); got != 1 {
		t.Fatalf("crash write fired %d times, want 1", got)
	}

	// Restart on the same address and data dir: recovery replays the
	// journal and truncates the torn block away before listening.
	srv2 := restartIngest(t, addr, ingest.Options{Dir: dataDir, FS: plan.IngestFS()})
	if rec := srv2.Recovered(); rec.Salvaged == 0 {
		t.Errorf("restart recovered %d runs but salvaged none; a torn-tail run was on disk", rec.Runs)
	}

	runWorkload(t, rt, 200)
	tl.Detach()
	if err := tl.StreamError(); err != nil {
		t.Fatalf("stream error: %v", err)
	}

	rep := tl.Report()
	if rep.IngestReconnects == 0 {
		t.Error("the sink never reconnected across the daemon restart")
	}
	if rep.IngestDroppedChunks != 0 {
		t.Errorf("%d chunks dropped across a recoverable daemon crash", rep.IngestDroppedChunks)
	}
	if rep.IngestStorageChunks != 0 {
		t.Errorf("%d chunks refused INGEST_STORAGE on a healthy disk", rep.IngestStorageChunks)
	}
	ri := waitRunWithin(t, srv2, "crash-restart", 15*time.Second)
	if !ri.Salvaged {
		t.Error("the recovered run is not marked salvaged")
	}
	if !ri.Durable {
		t.Error("the recovered run lost its durable mode")
	}
	if ri.Chunks != rep.IngestShippedChunks {
		t.Errorf("server landed %d chunks, client shipped %d", ri.Chunks, rep.IngestShippedChunks)
	}
	runDir := filepath.Join(dataDir, "crash-restart")
	requireByteIdentical(t, localDir, runDir)
	if m, err := ingest.ReadManifest(runDir); err != nil {
		t.Errorf("reading sealed manifest: %v", err)
	} else if !m.Complete || !m.Salvaged {
		t.Errorf("sealed manifest: complete=%v salvaged=%v, want both true", m.Complete, m.Salvaged)
	}
	checkAccounting(t, rep, plan, parseStreamDir(t, localDir))
}

// TestChaosDiskFullQuarantinesOneRun fills the disk under one run
// while a second run shares the daemon: the doomed run must be
// quarantined with the typed INGEST_STORAGE code — not folded into
// generic drops — and the healthy run must keep ingesting to a
// byte-identical finish, untouched by its neighbour's dead disk.
func TestChaosDiskFullQuarantinesOneRun(t *testing.T) {
	plan := faultinject.New(31)
	plan.DiskFullAfter(filepath.Join("doomed-run", "trace."), 8192)

	dataDir := t.TempDir()
	srv, err := ingest.Serve("127.0.0.1:0", ingest.Options{Dir: dataDir, FS: plan.IngestFS()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	rtA := omp.New(omp.Config{NumThreads: 2})
	defer rtA.Close()
	rtB := omp.New(omp.Config{NumThreads: 2})
	defer rtB.Close()
	localA, localB := t.TempDir(), t.TempDir()

	optsA := tool.FullMeasurement()
	optsA.StreamDir = localA
	optsA.IngestAddr = srv.Addr()
	optsA.IngestRun = "doomed-run"
	optsA.IngestDurable = true
	tlA, err := tool.AttachRuntime(rtA, optsA)
	if err != nil {
		t.Fatal(err)
	}
	optsB := tool.FullMeasurement()
	optsB.StreamDir = localB
	optsB.IngestAddr = srv.Addr()
	optsB.IngestRun = "healthy-run"
	optsB.IngestDurable = true
	tlB, err := tool.AttachRuntime(rtB, optsB)
	if err != nil {
		t.Fatal(err)
	}

	// Interleave the two runs so the healthy one is mid-flight when its
	// neighbour's disk dies.
	start := time.Now()
	for i := 0; i < 250; i++ {
		rtA.Parallel(func(tc *omp.ThreadCtx) {})
		rtB.Parallel(func(tc *omp.ThreadCtx) {})
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("workload took %v: a dead disk is blocking recording threads", elapsed)
	}
	tlA.Detach()
	tlB.Detach()

	if plan.FiredCount(faultinject.KindDiskFull) == 0 {
		t.Fatal("ENOSPC never fired: the byte budget was not reached")
	}
	repA, repB := tlA.Report(), tlB.Report()

	// The doomed run: typed storage refusals, not generic drops.
	if repA.IngestStorageChunks == 0 {
		t.Error("no chunk was refused INGEST_STORAGE on a full disk")
	}
	if repA.IngestDroppedChunks != 0 {
		t.Errorf("%d chunks in the generic drop bucket; storage loss must be typed", repA.IngestDroppedChunks)
	}
	riA := waitRunDone(t, srv, "doomed-run")
	if !riA.Quarantined {
		t.Error("the run whose disk filled is not quarantined")
	}
	if riA.StorageChunks == 0 {
		t.Error("the server counted no storage-refused chunks for the quarantined run")
	}

	// The healthy run: completely unaffected.
	if repB.IngestStorageChunks != 0 {
		t.Errorf("%d chunks refused INGEST_STORAGE on the healthy run", repB.IngestStorageChunks)
	}
	if repB.IngestDroppedChunks != 0 {
		t.Errorf("%d chunks dropped on the healthy run", repB.IngestDroppedChunks)
	}
	riB := waitRunDone(t, srv, "healthy-run")
	if riB.Quarantined {
		t.Error("the healthy run was quarantined by its neighbour's dead disk")
	}
	if riB.Chunks != repB.IngestShippedChunks {
		t.Errorf("healthy run landed %d chunks, client shipped %d", riB.Chunks, repB.IngestShippedChunks)
	}
	requireByteIdentical(t, localB, filepath.Join(dataDir, "healthy-run"))
	checkAccounting(t, repA, plan, parseStreamDir(t, localA))
	checkAccounting(t, repB, plan, parseStreamDir(t, localB))
}

// TestChaosDiskCrashAtManifestSeal kills the daemon at the run's
// commit point: the BYE is journaled and every block synced, but the
// crash lands exactly before the manifest rename. Recovery must trust
// the journal, replay the run to complete, and the directory must
// still be byte-identical — the atomic seal leaves no window where a
// finished run can be half-trusted.
func TestChaosDiskCrashAtManifestSeal(t *testing.T) {
	plan := faultinject.New(37)
	dataDir := t.TempDir()
	srv, err := ingest.Serve("127.0.0.1:0", ingest.Options{Dir: dataDir, FS: plan.IngestFS()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	killed := make(chan struct{})
	plan.SetOnCrash(func() {
		srv.Kill()
		close(killed)
	})

	rt := omp.New(omp.Config{NumThreads: 2})
	defer rt.Close()
	localDir := t.TempDir()
	opts := tool.FullMeasurement()
	opts.StreamDir = localDir
	opts.IngestAddr = srv.Addr()
	opts.IngestRun = "seal-crash"
	opts.IngestDurable = true
	tl, err := tool.AttachRuntime(rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, rt, 300)

	// Arm the rename crash only once the run exists, so the initial
	// identity manifest (written at run creation) is past; the next
	// manifest rename is the BYE's atomic seal.
	deadline := time.Now().Add(10 * time.Second)
	for {
		found := false
		for _, ri := range srv.Runs() {
			if ri.ID == "seal-crash" && ri.Chunks > 0 {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no chunk ever landed on the server")
		}
		time.Sleep(2 * time.Millisecond)
	}
	plan.CrashOnRename(manifestBase, false)

	tl.Detach() // BYE → journal + sync + manifest rename → crash
	select {
	case <-killed:
	case <-time.After(10 * time.Second):
		t.Fatal("the manifest-rename crash never fired")
	}
	if got := plan.FiredCount(faultinject.KindCrashRename); got != 1 {
		t.Fatalf("rename crash fired %d times, want 1", got)
	}

	// A fresh daemon over the same data dir: the journal holds the BYE,
	// so recovery replays the run all the way to complete.
	srv2, err := ingest.Serve("127.0.0.1:0", ingest.Options{Dir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv2.Close() })
	ri := waitRunWithin(t, srv2, "seal-crash", 5*time.Second)
	if !ri.Salvaged {
		t.Error("the recovered run is not marked salvaged")
	}
	runDir := filepath.Join(dataDir, "seal-crash")
	requireByteIdentical(t, localDir, runDir)
	if m, err := ingest.ReadManifest(runDir); err != nil {
		t.Errorf("reading recovered manifest: %v", err)
	} else if !m.Complete {
		t.Error("recovery did not replay the journaled BYE to a complete manifest")
	}
	rep := tl.Report()
	checkAccounting(t, rep, plan, parseStreamDir(t, localDir))
}

// manifestBase matches only the atomic-rename target, not the journal
// or trace files.
const manifestBase = "MANIFEST.json"
