package faultinject

// Hang-shaped faults: the schedules that make a program wedge instead
// of lose data, for exercising the hang supervisor. Message faults
// make an mpi edge silently drop or defer deliveries (the classic
// mismatched-tag / lost-message hang); named stall points let a test
// park one chosen thread mid-region (a barrier no-show) until Release.
// Like every other rule here they are deterministic: a rule either
// matches a coordinate or it does not, and every firing is recorded.

import (
	"fmt"
	"time"

	"goomp/internal/mpi"
)

// Any matches any rank or tag in a message rule's coordinates.
const Any = -1

type msgRule struct {
	src, dst, tag int // Any is a wildcard
	kind          Kind
	delay         time.Duration
}

func (r msgRule) matches(src, dst, tag int) bool {
	return (r.src == Any || r.src == src) &&
		(r.dst == Any || r.dst == dst) &&
		(r.tag == Any || r.tag == tag)
}

// DropMessage makes every Send on the (src, dst, tag) edge vanish
// without delivery — the receiver that posted a matching Recv blocks
// forever. Use Any as a wildcard for any coordinate.
func (p *Plan) DropMessage(src, dst, tag int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.msgs = append(p.msgs, msgRule{src: src, dst: dst, tag: tag, kind: KindMsgDrop})
}

// DelayMessage defers every delivery on the (src, dst, tag) edge by d.
// The message still arrives, so a supervised run with d under the hang
// timeout must not be diagnosed as hung.
func (p *Plan) DelayMessage(src, dst, tag int, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.msgs = append(p.msgs, msgRule{src: src, dst: dst, tag: tag, kind: KindMsgDelay, delay: d})
}

// ApplyWorld installs the plan's message-fault schedule on the world.
func (p *Plan) ApplyWorld(w *mpi.World) {
	w.SetFaultHook(p.messageFault)
}

// messageFault decides one delivery's fate; it matches the mpi fault
// hook signature. First matching rule wins.
func (p *Plan) messageFault(src, dst, tag int) (bool, time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.msgs {
		if !r.matches(src, dst, tag) {
			continue
		}
		rec := Record{
			Kind:   r.kind,
			Thread: int32(dst),
			Index:  uint64(uint(tag)),
			Point:  fmt.Sprintf("%d->%d tag %d", src, dst, tag),
		}
		p.fired = append(p.fired, rec)
		return r.kind == KindMsgDrop, r.delay
	}
	return false, 0
}

// StallAt arms the named stall point: every Stall(name) call blocks
// until Release. Unarmed points cost one map lookup.
func (p *Plan) StallAt(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stalls[name] = true
}

// Stall is the workload side of a named stall point: place it where a
// thread should go missing (before a barrier, inside a critical
// section) and arm it from the test with StallAt. Released threads
// resume normally.
func (p *Plan) Stall(name string) {
	p.mu.Lock()
	armed := p.stalls[name]
	if armed {
		p.fired = append(p.fired, Record{Kind: KindStall, Point: name})
	}
	p.mu.Unlock()
	if armed {
		<-p.release
	}
}
