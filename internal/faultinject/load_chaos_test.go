package faultinject_test

import (
	"path/filepath"
	"testing"
	"time"

	"goomp/internal/collector"
	"goomp/internal/degrade"
	"goomp/internal/faultinject"
	"goomp/internal/ingest"
	"goomp/internal/omp"
	"goomp/internal/tool"
)

// The overload chaos suite drives the adaptive governor and the
// store-and-forward spill through the always-on failure modes: a
// measurement whose own cost exceeds its overhead budget, a psxd
// outage longer than the in-memory queue, and a burst flood into an
// overloaded daemon. The invariants: the governor converges under its
// ceiling through observable ladder steps, an outage shorter than the
// spill bound loses nothing (byte-identical replay), and every frame a
// flood sheds is counted exactly.

// checkChunkConservation asserts the sink's conservation equation:
// every produced chunk is in exactly one bucket at the end of the run.
func checkChunkConservation(t *testing.T, rep *tool.Report) {
	t.Helper()
	got := rep.IngestShippedChunks + rep.IngestDroppedChunks +
		rep.IngestStorageChunks + rep.IngestReplayedChunks +
		rep.IngestSpillPendingChunks
	if got != rep.IngestProducedChunks {
		t.Errorf("conservation: shipped %d + dropped %d + storage %d + replayed %d + spill-pending %d = %d, want %d produced",
			rep.IngestShippedChunks, rep.IngestDroppedChunks,
			rep.IngestStorageChunks, rep.IngestReplayedChunks,
			rep.IngestSpillPendingChunks, got, rep.IngestProducedChunks)
	}
}

// TestChaosLoadCeilingConvergence arms the governor with a 1% ceiling
// the full-fidelity measurement cannot meet on an all-overhead
// workload, under sustained external jitter (periodic slow callbacks).
// The ladder must step down for the over-ceiling reason and the EWMA
// must converge under the ceiling at a degraded rung — and the
// external jitter, which inflates wall time but not the governor's own
// metered cost, must not be mistaken for profiling overhead.
func TestChaosLoadCeilingConvergence(t *testing.T) {
	plan := faultinject.New(29)
	plan.DelayEvery(collector.EventJoin, 10, 100*time.Microsecond)

	rt := omp.New(omp.Config{NumThreads: 2})
	defer rt.Close()
	opts := tool.FullMeasurement()
	opts.OverheadCeiling = 0.01
	opts.GovernorTick = 2 * time.Millisecond
	plan.Apply(&opts)
	tl, err := tool.AttachRuntime(rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Detach()

	deadline := time.Now().Add(30 * time.Second)
	converged := false
	for !converged {
		if time.Now().After(deadline) {
			rep := tl.Report()
			t.Fatalf("never converged under the ceiling: level=%v ratio=%v ceiling=%v steps=%v",
				rep.GovernorLevel, rep.GovernorRatio, rep.GovernorCeiling, rep.GovernorSteps)
		}
		for i := 0; i < 100; i++ {
			rt.Parallel(func(tc *omp.ThreadCtx) {})
		}
		rep := tl.Report()
		converged = rep.GovernorLevel > degrade.LevelFull &&
			rep.GovernorRatio <= rep.GovernorCeiling
	}

	rep := tl.Report()
	overCeiling := false
	for _, tr := range rep.GovernorSteps {
		if tr.Reason == degrade.ReasonOverCeiling {
			overCeiling = true
		}
	}
	if !overCeiling {
		t.Errorf("no over-ceiling step in the history: %v", rep.GovernorSteps)
	}
	if plan.FiredCount(faultinject.KindDelay) == 0 {
		t.Error("the sustained jitter never fired")
	}
}

// TestChaosLoadOutageSpillReplay cuts the connection mid-run and then
// fails the next six redials — an outage far longer than the
// two-frame in-memory queue. The backlog must take the on-disk
// store-and-forward detour, replay in order once the daemon returns,
// and the run must end complete with zero loss: the conservation
// equation balances with an empty drop bucket, the server's directory
// is byte-identical to the local tee, and the BYE carries the exact
// spill accounting into the manifest.
func TestChaosLoadOutageSpillReplay(t *testing.T) {
	srv, dataDir := startNetChaosServer(t)
	plan := faultinject.New(31)
	plan.CutConnAfterFrames(1, 4) // HELLO + 3 data frames, then dead
	plan.FailDialRange(2, 6)      // ~1.6s of capped-backoff outage

	rt := omp.New(omp.Config{NumThreads: 2})
	defer rt.Close()
	localDir := t.TempDir()
	opts := tool.FullMeasurement()
	opts.StreamDir = localDir
	opts.IngestAddr = srv.Addr()
	opts.IngestRun = "outage-spill"
	opts.IngestPendingDepth = 2 // tiny queue: the outage overruns it fast
	opts.SpillDir = t.TempDir()
	plan.Apply(&opts)
	tl, err := tool.AttachRuntime(rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Produce until the backlog has demonstrably hit the disk, so the
	// assertion never depends on chunk-size timing against the outage
	// window.
	deadline := time.Now().Add(30 * time.Second)
	for tl.Report().IngestSpilledChunks == 0 {
		if time.Now().After(deadline) {
			t.Fatal("spill never engaged during the outage")
		}
		runWorkload(t, rt, 100)
	}
	runWorkload(t, rt, 200)
	tl.Detach()

	rep := tl.Report()
	checkChunkConservation(t, rep)
	if got := plan.FiredCount(faultinject.KindConnCut); got != 1 {
		t.Errorf("connection cut fired %d times, want 1", got)
	}
	if got := plan.FiredCount(faultinject.KindDialError); got != 6 {
		t.Errorf("outage window failed %d dials, want 6", got)
	}
	if rep.IngestDroppedChunks != 0 || rep.IngestSpillPendingChunks != 0 {
		t.Fatalf("outage shorter than the spill bound lost data: dropped=%d pending=%d",
			rep.IngestDroppedChunks, rep.IngestSpillPendingChunks)
	}
	if rep.IngestSpilledChunks == 0 || rep.IngestReplayedChunks != rep.IngestSpilledChunks {
		t.Fatalf("spilled %d, replayed %d: the detour must deliver everything",
			rep.IngestSpilledChunks, rep.IngestReplayedChunks)
	}
	ri := waitRunDone(t, srv, "outage-spill")
	if ri.Chunks != rep.IngestShippedChunks+rep.IngestReplayedChunks {
		t.Errorf("server landed %d chunks, client shipped %d + replayed %d",
			ri.Chunks, rep.IngestShippedChunks, rep.IngestReplayedChunks)
	}
	requireByteIdentical(t, localDir, filepath.Join(dataDir, "outage-spill"))
	m, err := ingest.ReadManifest(filepath.Join(dataDir, "outage-spill"))
	if err != nil {
		t.Fatal(err)
	}
	if m.ClientProduced != rep.IngestProducedChunks ||
		m.ClientSpilled != rep.IngestSpilledChunks ||
		m.ClientReplayed != rep.IngestReplayedChunks ||
		m.ClientDropped != 0 {
		t.Errorf("manifest accounting (produced %d spilled %d replayed %d dropped %d) does not match the report (produced %d spilled %d replayed %d)",
			m.ClientProduced, m.ClientSpilled, m.ClientReplayed, m.ClientDropped,
			rep.IngestProducedChunks, rep.IngestSpilledChunks, rep.IngestReplayedChunks)
	}
}

// TestChaosLoadBurstFlood floods a daemon that cannot keep up: a
// one-frame ingest queue drained through per-chunk fsyncs that each
// take 5ms. The server sheds with OVERLOADED acks; the client must
// count every shed frame exactly, the governor must take the
// backpressure signal as ladder steps, and the registry must agree
// with the client about what actually landed.
func TestChaosLoadBurstFlood(t *testing.T) {
	plan := faultinject.New(37)
	plan.SlowSync("trace", 5*time.Millisecond)
	dir := t.TempDir()
	srv, err := ingest.Serve("127.0.0.1:0", ingest.Options{
		Dir:              dir,
		QueueDepth:       1,
		BackpressureWait: time.Millisecond,
		Fsync:            ingest.FsyncPolicy{Mode: ingest.FsyncEveryN, N: 1},
		FS:               plan.IngestFS(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rt := omp.New(omp.Config{NumThreads: 2})
	defer rt.Close()
	opts := tool.FullMeasurement()
	opts.IngestAddr = srv.Addr()
	opts.IngestRun = "burst-flood"
	opts.OverheadCeiling = 0.9 // generous: only backpressure can step it
	opts.GovernorTick = 2 * time.Millisecond
	plan.Apply(&opts)
	tl, err := tool.AttachRuntime(rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for tl.Report().IngestOverloadedAcks == 0 {
		if time.Now().After(deadline) {
			t.Fatal("the flood never drew an OVERLOADED ack")
		}
		runWorkload(t, rt, 200)
	}
	// The backpressure latch is consumed by the governor's next tick;
	// hold the flood until the ladder visibly moves.
	stepped := func() bool {
		for _, tr := range tl.Report().GovernorSteps {
			if tr.Reason == degrade.ReasonBackpressure {
				return true
			}
		}
		return false
	}
	for !stepped() {
		if time.Now().After(deadline) {
			t.Fatal("the OVERLOADED acks never stepped the governor")
		}
		runWorkload(t, rt, 50)
	}
	tl.Detach()

	rep := tl.Report()
	checkChunkConservation(t, rep)
	if rep.IngestOverloadedAcks == 0 {
		t.Fatal("no OVERLOADED acks recorded")
	}
	if rep.IngestDroppedChunks == 0 {
		t.Error("the daemon shed frames but the client counted no drops")
	}
	backpressure := false
	for _, tr := range rep.GovernorSteps {
		if tr.Reason == degrade.ReasonBackpressure {
			backpressure = true
		}
	}
	if !backpressure {
		t.Errorf("OVERLOADED acks never reached the governor: %v", rep.GovernorSteps)
	}
	ri := waitRunDone(t, srv, "burst-flood")
	if ri.Chunks != rep.IngestShippedChunks+rep.IngestReplayedChunks {
		t.Errorf("server landed %d chunks, client shipped %d + replayed %d",
			ri.Chunks, rep.IngestShippedChunks, rep.IngestReplayedChunks)
	}
	// The BYE records the shed frames, so offline readers see the loss.
	m, err := ingest.ReadManifest(filepath.Join(dir, "burst-flood"))
	if err != nil {
		t.Fatal(err)
	}
	if m.ClientDropped != rep.IngestDroppedChunks {
		t.Errorf("manifest records %d dropped chunks, client counted %d",
			m.ClientDropped, rep.IngestDroppedChunks)
	}
}
